#ifndef MUDS_COMMON_TRACE_H_
#define MUDS_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/timer.h"

namespace muds {

/// One completed span: a named interval on one thread, with optional
/// pre-rendered JSON args (e.g. `{"rhs":3}`).
struct TraceEvent {
  std::string name;
  /// JSON object text for the chrome-trace "args" field, or empty.
  std::string args;
  /// Microseconds relative to the collector epoch.
  int64_t begin_us = 0;
  int64_t end_us = 0;
  /// Dense thread id (0 = first thread that ever recorded).
  uint32_t tid = 0;
};

/// Thread-safe span collector with a Chrome `chrome://tracing` / Perfetto
/// JSON exporter. Collection is off by default: MUDS_TRACE_SPAN costs one
/// relaxed atomic load when disabled, so instrumented builds stay within
/// the <= 1% overhead budget. When enabled (muds_profile --trace=FILE, or
/// Start() programmatically), each thread appends completed spans to its own
/// buffer behind a thread-private mutex — recording threads never contend
/// with each other, only with a concurrent snapshot.
///
/// Spans on one thread follow RAII stack discipline, so the exporter can
/// emit properly nested, matched B/E event pairs per thread track.
class TraceCollector {
 public:
  /// The process-wide instance (what MUDS_TRACE_SPAN records into).
  static TraceCollector& Global();

  /// Clears previously collected spans and starts collecting.
  void Start();

  /// Stops collecting. Spans still open at this point are dropped when they
  /// close (a span is recorded only if collection was enabled when it
  /// began and when it ended).
  void Stop();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since the collector epoch (set at Start()).
  int64_t NowMicros() const;

  /// Records a completed span on the calling thread.
  void Record(std::string name, int64_t begin_us, int64_t end_us,
              std::string args = {});

  /// Snapshot of all recorded spans, ordered by (tid, begin, end desc) —
  /// i.e. per-thread in proper nesting order.
  std::vector<TraceEvent> Events() const;

  /// Number of recorded spans.
  size_t NumEvents() const;

  /// Serializes the collected spans in the Chrome trace-event JSON array
  /// format: per-thread tracks (thread_name metadata), matched "B"/"E"
  /// pairs, microsecond timestamps. Loads in chrome://tracing and Perfetto.
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  struct ThreadLog {
    std::mutex mutex;
    std::vector<TraceEvent> events;
    uint32_t tid = 0;
  };

  TraceCollector();

  /// The calling thread's log, registered on first use.
  ThreadLog* LocalLog();

  std::atomic<bool> enabled_{false};
  /// Raw steady-clock microseconds at the last Start() (atomic so recording
  /// threads can read it racelessly against a concurrent Start).
  std::atomic<int64_t> epoch_us_{0};
  mutable std::mutex mutex_;  // Guards logs_ registration and iteration.
  std::vector<std::shared_ptr<ThreadLog>> logs_;
  uint32_t next_tid_ = 0;
};

/// RAII span: measures its scope, always accumulates into the given
/// PhaseTimings (when non-null), and additionally records a TraceEvent when
/// the global collector is enabled. This is the one instrumentation point —
/// PhaseTimings is the aggregated per-phase view of the same intervals the
/// trace records.
class TraceSpan {
 public:
  /// Span with no PhaseTimings aggregation (e.g. per-task spans inside
  /// parallel loops, where the shared PhaseTimings must not be touched).
  explicit TraceSpan(std::string name, std::string args = {})
      : TraceSpan(nullptr, std::move(name), std::move(args)) {}

  TraceSpan(PhaseTimings* timings, std::string name, std::string args = {});
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  PhaseTimings* timings_;
  std::string name_;
  std::string args_;
  Timer timer_;
  /// Begin timestamp in collector time; only set when recording.
  int64_t begin_us_ = 0;
  bool recording_;
};

/// Derives the per-phase aggregate view from a span list: phase durations
/// summed by name, phases ordered by first begin timestamp. Applying this to
/// TraceCollector::Events() reproduces the PhaseTimings the spans maintained
/// incrementally (for spans created with a PhaseTimings target).
PhaseTimings PhaseTimingsFromTrace(const std::vector<TraceEvent>& events);

// Expands to a scoped TraceSpan with a unique variable name:
//   MUDS_TRACE_SPAN(&timings, "DUCC");
//   MUDS_TRACE_SPAN("rzTraversal", "{\"rhs\":3}");  (trace-only span)
#define MUDS_TRACE_CONCAT_INNER_(a, b) a##b
#define MUDS_TRACE_CONCAT_(a, b) MUDS_TRACE_CONCAT_INNER_(a, b)
#define MUDS_TRACE_SPAN(...) \
  ::muds::TraceSpan MUDS_TRACE_CONCAT_(muds_trace_span_, __LINE__)(__VA_ARGS__)

}  // namespace muds

#endif  // MUDS_COMMON_TRACE_H_
