#ifndef MUDS_COMMON_METRICS_H_
#define MUDS_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace muds {

/// A sorted (by name) list of metric values — what MetricsRegistry::Snapshot
/// returns and what reports/benches serialize.
using MetricsSnapshot = std::vector<std::pair<std::string, int64_t>>;

/// Process-wide monotonic counter with per-thread striping: Add() touches
/// one cache-line-private atomic cell chosen by the calling thread, so
/// concurrent increments from the pool workers never contend on one line.
/// Value() sums the cells; it is exact once the incrementing threads have
/// quiesced (joined or reached a barrier) and approximate while they run —
/// the usual trade of a striped counter.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Lock-free; safe from any thread. `delta` should be >= 0 (counters are
  /// monotonic; use a Gauge for values that go down).
  void Add(int64_t delta) {
    cells_[CellIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over all cells.
  int64_t Value() const {
    int64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  const std::string& name() const { return name_; }

 private:
  /// Enough stripes that a machine-sized pool rarely collides; each cell
  /// occupies its own cache line.
  static constexpr size_t kNumCells = 32;
  struct alignas(64) Cell {
    std::atomic<int64_t> value{0};
  };

  /// Dense per-thread id modulo kNumCells (assigned on each thread's first
  /// metric touch; defined in metrics.cc).
  static size_t CellIndex();

  std::string name_;
  std::array<Cell, kNumCells> cells_;
};

/// Last-write-wins instantaneous value (queue depth, bytes cached, ...).
/// A single atomic: gauges are written at coarse points, not on hot paths.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// Process-wide registry of named counters and gauges — the single substrate
/// every subsystem (PLI cache, thread pool, SPIDER, DUCC, MUDS lattice
/// phases) reports through. Handles returned by GetCounter/GetGauge are
/// stable for the process lifetime, so call sites resolve a metric once and
/// increment through the pointer on the hot path.
///
/// Thread safety: GetCounter/GetGauge/Snapshot may be called concurrently
/// with each other and with Add/Set on any handle. Registration takes a
/// mutex (it is rare); increments never do.
class MetricsRegistry {
 public:
  /// The process-wide instance.
  static MetricsRegistry& Global();

  /// Returns the counter registered under `name`, creating it (at value 0)
  /// on first use. Never returns null.
  Counter* GetCounter(const std::string& name);

  /// Returns the gauge registered under `name`, creating it on first use.
  Gauge* GetGauge(const std::string& name);

  /// Current value of every registered counter and gauge, sorted by name.
  MetricsSnapshot Snapshot() const;

  /// Per-name `after - before` for every name in `after` (names absent from
  /// `before` are treated as 0 there). Zero deltas are kept: a registered
  /// counter that did not move is still part of the report, which is what
  /// the CI presence check relies on. Both inputs must be sorted by name
  /// (Snapshot() output is).
  static MetricsSnapshot Delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after);

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
};

namespace metrics {

/// Convenience for cold paths and end-of-phase flushes: one registry
/// look-up plus an Add. Hot paths should cache the Counter* instead.
inline void Add(const std::string& name, int64_t delta) {
  MetricsRegistry::Global().GetCounter(name)->Add(delta);
}

inline void SetGauge(const std::string& name, int64_t value) {
  MetricsRegistry::Global().GetGauge(name)->Set(value);
}

}  // namespace metrics

}  // namespace muds

#endif  // MUDS_COMMON_METRICS_H_
