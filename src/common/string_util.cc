#include "common/string_util.h"

#include <cstdio>

namespace muds {

std::vector<std::string> SplitString(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && (text[begin] == ' ' || text[begin] == '\t' ||
                         text[begin] == '\r' || text[begin] == '\n')) {
    ++begin;
  }
  while (end > begin && (text[end - 1] == ' ' || text[end - 1] == '\t' ||
                         text[end - 1] == '\r' || text[end - 1] == '\n')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string FormatMicros(int64_t micros) {
  char buf[64];
  if (micros < 1000) {
    std::snprintf(buf, sizeof(buf), "%ldus", static_cast<long>(micros));
  } else if (micros < 1000 * 1000) {
    std::snprintf(buf, sizeof(buf), "%.1fms",
                  static_cast<double>(micros) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs",
                  static_cast<double>(micros) / 1e6);
  }
  return buf;
}

}  // namespace muds
