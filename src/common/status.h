#ifndef MUDS_COMMON_STATUS_H_
#define MUDS_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace muds {

/// Error category for failed operations.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kParseError,
  kOutOfRange,
  /// The operation could not be accepted right now (e.g. a draining server
  /// rejecting new jobs). Distinct from kOutOfRange (a full queue) so
  /// clients can tell "retry later elsewhere" from "back off".
  kUnavailable,
  /// The operation was cancelled by an explicit request.
  kCancelled,
  /// The operation ran past its deadline.
  kDeadlineExceeded,
};

/// Returns a human-readable name for a StatusCode (e.g. "IoError").
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail. The library does not throw; any
/// operation whose failure depends on external input (file I/O, parsing,
/// user-supplied parameters) reports failure through Status or Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Accessing the value of
/// a failed Result is a fatal error (MUDS_CHECK).
template <typename T>
class Result {
 public:
  /// Implicit conversion from a value: allows `return value;`.
  Result(T value) : value_(std::move(value)) {}
  /// Implicit conversion from an error status: allows `return status;`.
  Result(Status status) : status_(std::move(status)) {
    MUDS_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    MUDS_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T& value() & {
    MUDS_CHECK_MSG(ok(), status_.message().c_str());
    return *value_;
  }
  T&& value() && {
    MUDS_CHECK_MSG(ok(), status_.message().c_str());
    return *std::move(value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace muds

#endif  // MUDS_COMMON_STATUS_H_
