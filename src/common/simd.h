#ifndef MUDS_COMMON_SIMD_H_
#define MUDS_COMMON_SIMD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

// Portable SIMD wrapper for the PLI hot kernels (probe-table fill, cluster
// scans, bitmap-mask violation tests). The instruction set is selected at
// compile time: AVX2 when the build enables it (the top-level CMakeLists
// probes the host and adds -mavx2 when it runs), NEON on AArch64, and a
// scalar fallback everywhere else. MUDS_SIMD_OFF (cmake -DMUDS_SIMD=off)
// forces the scalar fallback at compile time.
//
// Runtime dispatch is deliberately a single global kill switch rather than
// per-call function pointers: ForceScalar(true) routes every kernel through
// the scalar path, which is how the benches measure SIMD-vs-scalar on one
// binary and how muds_diff / the fuzzers exercise both code paths. All
// kernels are pure and produce identical results at every level.
#if defined(MUDS_SIMD_OFF)
// Compile-time scalar build.
#elif defined(__AVX2__)
#define MUDS_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__ARM_NEON)
#define MUDS_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace muds {
namespace simd {

enum class Level { kScalar, kAvx2, kNeon };

#if defined(MUDS_SIMD_AVX2)
inline constexpr Level kCompiledLevel = Level::kAvx2;
#elif defined(MUDS_SIMD_NEON)
inline constexpr Level kCompiledLevel = Level::kNeon;
#else
inline constexpr Level kCompiledLevel = Level::kScalar;
#endif

namespace internal {
inline std::atomic<bool>& ForceScalarFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace internal

/// Routes every kernel through the scalar fallback until turned off again.
/// Intended for A/B measurement and differential testing; results are
/// identical either way.
inline void ForceScalar(bool on) {
  internal::ForceScalarFlag().store(on, std::memory_order_relaxed);
}

inline bool ScalarForced() {
  return internal::ForceScalarFlag().load(std::memory_order_relaxed);
}

/// The level the kernels will actually run at right now.
inline Level ActiveLevel() {
  return ScalarForced() ? Level::kScalar : kCompiledLevel;
}

inline const char* LevelName(Level level) {
  switch (level) {
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
    case Level::kScalar:
      return "scalar";
  }
  return "scalar";
}

inline const char* ActiveLevelName() { return LevelName(ActiveLevel()); }

/// Fills dst[0..n) with `value` — the probe-table reset.
inline void FillI32(int32_t* dst, size_t n, int32_t value) {
  size_t i = 0;
#if defined(MUDS_SIMD_AVX2)
  if (!ScalarForced()) {
    const __m256i v = _mm256_set1_epi32(value);
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
    }
  }
#elif defined(MUDS_SIMD_NEON)
  if (!ScalarForced()) {
    const int32x4_t v = vdupq_n_s32(value);
    for (; i + 4 <= n; i += 4) vst1q_s32(dst + i, v);
  }
#endif
  for (; i < n; ++i) dst[i] = value;
}

/// True iff codes[rows[i]] == expected for every i in [0, n) — the
/// cluster-constancy scan of Pli::Refines. AVX2 gathers eight codes per
/// compare; the scalar loop early-exits on the first mismatch.
inline bool AllEqualGather(const int32_t* codes, const int32_t* rows,
                           size_t n, int32_t expected) {
  size_t i = 0;
#if defined(MUDS_SIMD_AVX2)
  if (!ScalarForced()) {
    const __m256i want = _mm256_set1_epi32(expected);
    for (; i + 8 <= n; i += 8) {
      const __m256i idx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
      const __m256i vals = _mm256_i32gather_epi32(codes, idx, 4);
      const __m256i eq = _mm256_cmpeq_epi32(vals, want);
      if (_mm256_movemask_epi8(eq) != -1) return false;
    }
  }
#endif
  for (; i < n; ++i) {
    if (codes[rows[i]] != expected) return false;
  }
  return true;
}

/// True iff any word in w[0..n) has at least two bits set — the violation
/// test over single-word (domain <= 64) bitmap-PLI masks: a cluster whose
/// seen-mask holds two distinct codes breaks the refinement.
inline bool AnyMultiBit(const uint64_t* w, size_t n) {
  size_t i = 0;
#if defined(MUDS_SIMD_AVX2)
  if (!ScalarForced()) {
    const __m256i ones = _mm256_set1_epi64x(1);
    for (; i + 4 <= n; i += 4) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
      const __m256i lsb_cleared =
          _mm256_and_si256(v, _mm256_sub_epi64(v, ones));
      if (!_mm256_testz_si256(lsb_cleared, lsb_cleared)) return true;
    }
  }
#elif defined(MUDS_SIMD_NEON)
  if (!ScalarForced()) {
    for (; i + 2 <= n; i += 2) {
      const uint64x2_t v = vld1q_u64(w + i);
      const uint64x2_t lsb_cleared =
          vandq_u64(v, vsubq_u64(v, vdupq_n_u64(1)));
      if ((vgetq_lane_u64(lsb_cleared, 0) | vgetq_lane_u64(lsb_cleared, 1)) !=
          0) {
        return true;
      }
    }
  }
#endif
  for (; i < n; ++i) {
    const uint64_t v = w[i];
    if ((v & (v - 1)) != 0) return true;
  }
  return false;
}

/// True iff any 4-word group in w[0..4*groups) holds at least two set bits
/// in total — the violation test over 4-word (domain <= 256) bitmap-PLI
/// masks. A group violates if one word has two bits or two words are
/// non-zero.
inline bool AnyGroupMultiBit4(const uint64_t* w, size_t groups) {
  size_t g = 0;
#if defined(MUDS_SIMD_AVX2)
  if (!ScalarForced()) {
    const __m256i ones = _mm256_set1_epi64x(1);
    const __m256i zero = _mm256_setzero_si256();
    for (; g < groups; ++g) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4 * g));
      const __m256i lsb_cleared =
          _mm256_and_si256(v, _mm256_sub_epi64(v, ones));
      if (!_mm256_testz_si256(lsb_cleared, lsb_cleared)) return true;
      // Count non-zero 64-bit lanes: each contributes 8 bytes to the
      // movemask, so a single non-zero lane yields exactly 8 set bits.
      const int zero_mask =
          _mm256_movemask_epi8(_mm256_cmpeq_epi64(v, zero));
      const int nonzero_lanes =
          4 - __builtin_popcount(static_cast<unsigned>(zero_mask)) / 8;
      if (nonzero_lanes >= 2) return true;
    }
    return false;
  }
#endif
  for (; g < groups; ++g) {
    int bits = 0;
    for (size_t j = 0; j < 4; ++j) {
      const uint64_t v = w[4 * g + j];
      if ((v & (v - 1)) != 0) return true;
      bits += v != 0;
      if (bits >= 2) return true;
    }
  }
  return false;
}

/// Returns a 16-bit mask of the bytes in tags[0..16) equal to `tag` (bit i
/// set iff tags[i] == tag) — the control-byte group probe of the
/// SwissTable-style interning table in the ingest dictionary encode: one
/// compare inspects a whole probe group, so a lookup usually costs one
/// kernel call plus at most one full key compare.
inline uint32_t MatchTag16(const uint8_t* tags, uint8_t tag) {
#if defined(MUDS_SIMD_AVX2)
  // SSE2 is implied by AVX2; 16 control bytes fit one xmm register.
  if (!ScalarForced()) {
    const __m128i group =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(tags));
    const __m128i match =
        _mm_cmpeq_epi8(group, _mm_set1_epi8(static_cast<char>(tag)));
    return static_cast<uint32_t>(_mm_movemask_epi8(match));
  }
#elif defined(MUDS_SIMD_NEON) && defined(__aarch64__)
  if (!ScalarForced()) {
    const uint8x16_t eq = vceqq_u8(vld1q_u8(tags), vdupq_n_u8(tag));
    // Each matching lane contributes its distinct power-of-two bit, so the
    // horizontal add is an OR over disjoint bits.
    const uint8x16_t bits = {1, 2, 4, 8, 16, 32, 64, 128,
                             1, 2, 4, 8, 16, 32, 64, 128};
    const uint8x16_t masked = vandq_u8(eq, bits);
    return static_cast<uint32_t>(vaddv_u8(vget_low_u8(masked))) |
           (static_cast<uint32_t>(vaddv_u8(vget_high_u8(masked))) << 8);
  }
#endif
  uint32_t mask = 0;
  for (int i = 0; i < 16; ++i) {
    mask |= static_cast<uint32_t>(tags[i] == tag) << i;
  }
  return mask;
}

}  // namespace simd
}  // namespace muds

#endif  // MUDS_COMMON_SIMD_H_
