#ifndef MUDS_COMMON_SPILL_H_
#define MUDS_COMMON_SPILL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"

namespace muds {

/// Where (and how much) a component may spill to disk. An empty `dir`
/// disables spilling everywhere; this is the single knob the CLI exposes
/// (`--spill-dir`, `--spill-budget-mb`) and every tiered subsystem — the
/// two-tier PliCache, the external sort-merge SPIDER, the column store —
/// consumes.
struct SpillConfig {
  /// Directory the spill files are created in. Empty = spilling disabled.
  std::string dir;
  /// Byte budget for one spill pool's file (0 = unlimited). When the pool
  /// is full, writes fail and the caller falls back to its in-memory
  /// behavior (dropping + rebuilding instead of spilling + reloading).
  size_t budget_bytes = 0;

  bool enabled() const { return !dir.empty(); }
};

/// Handle to one allocation inside a SpillPool. Handles are plain values:
/// copyable, comparable against Invalid(), and only meaningful to the pool
/// that issued them.
struct SpillHandle {
  static constexpr uint64_t kInvalidOffset = ~uint64_t{0};

  uint64_t offset = kInvalidOffset;  // Slot-aligned file offset.
  uint64_t bytes = 0;                // Payload size (<= slot span).

  bool valid() const { return offset != kInvalidOffset; }
};

/// Slot-based disk pool for spilled payloads (cold PLIs, sorted runs).
///
/// One pool owns one file, created in `config.dir` and unlinked immediately
/// after opening, so the space is reclaimed by the kernel even on a crash.
/// The file is carved into fixed-size slots; an allocation takes a
/// contiguous extent of slots (first-fit over a coalescing free list), so a
/// spilled payload is always one positioned read away. `config.budget_bytes`
/// caps the file size: when no free extent fits and growing would exceed
/// the budget, Write fails and the caller keeps its in-memory fallback —
/// the pool never blocks or evicts on its own.
///
/// Thread safety: all methods are safe to call concurrently. The extent
/// allocator is guarded by one mutex; the data path uses positioned
/// pread/pwrite, so concurrent reads and writes to different extents do
/// not serialize on a file cursor.
class SpillPool {
 public:
  /// Slot granularity. Small enough that a spilled single-column PLI of a
  /// modest relation does not waste most of its extent, large enough that
  /// the free list stays short.
  static constexpr size_t kSlotBytes = size_t{64} << 10;

  /// Creates the pool's backing file in `config.dir` (which must exist).
  static Result<std::unique_ptr<SpillPool>> Create(const SpillConfig& config);

  ~SpillPool();
  SpillPool(const SpillPool&) = delete;
  SpillPool& operator=(const SpillPool&) = delete;

  /// Writes `bytes` bytes to a free extent and returns its handle. Fails
  /// with OutOfRange when the budget would be exceeded and with IoError on
  /// a failed write.
  Result<SpillHandle> Write(const void* data, size_t bytes);

  /// Reads the full payload of `handle` into `out` (which must have room
  /// for handle.bytes bytes).
  Status Read(const SpillHandle& handle, void* out) const;

  /// Reads `n` bytes starting `offset` bytes into the payload of `handle` —
  /// the streaming entry point the external-merge readers use.
  Status ReadAt(const SpillHandle& handle, uint64_t offset, void* out,
                size_t n) const;

  /// Returns the extent to the free list. Invalid handles are ignored.
  void Free(const SpillHandle& handle);

  /// Payload bytes currently allocated.
  size_t BytesInUse() const;
  /// Current size of the backing file (high-water mark; never shrinks).
  size_t FileBytes() const;
  /// Total successful Write calls.
  int64_t NumWrites() const;
  size_t budget_bytes() const { return budget_bytes_; }

 private:
  SpillPool(int fd, size_t budget_bytes);

  static uint64_t SlotsFor(uint64_t bytes) {
    return (bytes + kSlotBytes - 1) / kSlotBytes;
  }

  // Allocates a contiguous extent of `slots` slots; returns the slot-aligned
  // offset or SpillHandle::kInvalidOffset when the budget is exhausted.
  // Caller must hold mutex_.
  uint64_t AllocateSlots(uint64_t slots);

  const int fd_;
  const size_t budget_bytes_;

  mutable std::mutex mutex_;
  // Free extents, keyed by slot offset -> slot count; adjacent extents are
  // coalesced on Free, so long-lived pools do not fragment.
  std::map<uint64_t, uint64_t> free_extents_;
  uint64_t file_slots_ = 0;     // Slots the file currently spans.
  uint64_t slots_in_use_ = 0;   // Allocated slots.
  uint64_t bytes_in_use_ = 0;   // Allocated payload bytes.
  int64_t num_writes_ = 0;
};

}  // namespace muds

#endif  // MUDS_COMMON_SPILL_H_
