#ifndef MUDS_COMMON_BUILD_INFO_H_
#define MUDS_COMMON_BUILD_INFO_H_

#include "common/simd.h"

namespace muds {

/// Provenance of this binary, emitted into every BENCH_*.json and --json
/// report so a recorded number is attributable to an exact source revision,
/// compiler, and SIMD level when comparing runs across commits or machines.
struct BuildInfo {
  /// `git describe --always --dirty --tags` captured at CMake configure
  /// time ("unknown" when built outside a git checkout).
  const char* git;
  /// Compiler identification string.
  const char* compiler;
  /// Compile-time SIMD level of the PLI hot kernels (the MUDS_SIMD cmake
  /// option as resolved for this binary).
  const char* simd;
};

inline BuildInfo GetBuildInfo() {
  BuildInfo info;
#ifdef MUDS_GIT_DESCRIBE
  info.git = MUDS_GIT_DESCRIBE;
#else
  info.git = "unknown";
#endif
#if defined(__clang_version__)
  info.compiler = "clang " __clang_version__;
#elif defined(__VERSION__)
  info.compiler = "gcc " __VERSION__;
#else
  info.compiler = "unknown";
#endif
  info.simd = simd::LevelName(simd::kCompiledLevel);
  return info;
}

}  // namespace muds

#endif  // MUDS_COMMON_BUILD_INFO_H_
