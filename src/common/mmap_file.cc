#include "common/mmap_file.h"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define MUDS_MMAP_POSIX 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace muds {

Result<MappedFile> MappedFile::Open(const std::string& path) {
#if MUDS_MMAP_POSIX
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError(path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status = Status::IoError(path + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MappedFile(nullptr, 0);
  }
  void* data = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps the file alive.
  if (data == MAP_FAILED) {
    return Status::IoError(path + ": mmap: " + std::strerror(errno));
  }
  return MappedFile(data, size);
#else
  return Status::IoError(path + ": mmap not supported on this platform");
#endif
}

MappedFile::~MappedFile() {
#if MUDS_MMAP_POSIX
  if (data_ != nullptr) ::munmap(data_, size_);
#endif
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
#if MUDS_MMAP_POSIX
    if (data_ != nullptr) ::munmap(data_, size_);
#endif
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void MappedFile::Advise(Advice advice, size_t offset, size_t length) const {
#if MUDS_MMAP_POSIX
  if (data_ == nullptr || length == 0 || offset >= size_) return;
  if (offset + length > size_) length = size_ - offset;
  const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const size_t begin = offset / page * page;
  const size_t end = offset + length;
  int adv = MADV_NORMAL;
  switch (advice) {
    case Advice::kNormal:
      adv = MADV_NORMAL;
      break;
    case Advice::kSequential:
      adv = MADV_SEQUENTIAL;
      break;
    case Advice::kRandom:
      adv = MADV_RANDOM;
      break;
    case Advice::kWillNeed:
      adv = MADV_WILLNEED;
      break;
    case Advice::kDontNeed:
      adv = MADV_DONTNEED;
      break;
  }
  // Best effort: profiling is correct without the hint.
  (void)::madvise(static_cast<char*>(data_) + begin, end - begin, adv);
#else
  (void)advice;
  (void)offset;
  (void)length;
#endif
}

}  // namespace muds
