#ifndef MUDS_COMMON_RNG_H_
#define MUDS_COMMON_RNG_H_

#include <cstdint>

#include "common/check.h"

namespace muds {

/// Deterministic pseudo-random number generator (xoshiro256**). Used by the
/// random-walk lattice traversals and the synthetic dataset generators; a
/// fixed seed makes every run, test, and benchmark reproducible.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same sequence.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 expansion of the seed into the four state words.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). Requires bound > 0.
  uint64_t NextBelow(uint64_t bound) {
    MUDS_DCHECK(bound > 0);
    // Debiased modulo (rejection sampling on the tail).
    const uint64_t threshold = -bound % bound;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    MUDS_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability p (clamped to [0, 1]).
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace muds

#endif  // MUDS_COMMON_RNG_H_
