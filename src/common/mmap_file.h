#ifndef MUDS_COMMON_MMAP_FILE_H_
#define MUDS_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"

namespace muds {

/// Read-only memory mapping of a whole file: one mapping, one
/// `string_view`, unmapped on destruction. Movable, not copyable.
///
/// On platforms without mmap, Open fails with IoError and callers fall back
/// to their buffered read path — nothing in the tree requires mapping to
/// succeed.
class MappedFile {
 public:
  enum class Advice {
    kNormal,
    kSequential,  // madvise(MADV_SEQUENTIAL): aggressive read-ahead.
    kRandom,      // madvise(MADV_RANDOM): no read-ahead.
    kWillNeed,    // madvise(MADV_WILLNEED): prefetch now.
    kDontNeed,    // madvise(MADV_DONTNEED): drop clean pages.
  };

  /// Maps `path` read-only. Empty files succeed and yield an empty view.
  static Result<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::string_view view() const {
    // An unmapped file (size 0, or a platform without mmap) must not build
    // a string_view over a null pointer — that is UB the callers' parsers
    // would then iterate over.
    if (data_ == nullptr) return std::string_view();
    return std::string_view(static_cast<const char*>(data_), size_);
  }
  size_t size() const { return size_; }
  bool mapped() const { return data_ != nullptr; }

  /// Applies `advice` to the whole mapping; ignored where unsupported.
  void Advise(Advice advice) const { Advise(advice, 0, size_); }
  /// Applies `advice` to `[offset, offset + length)`; the range is widened
  /// to page boundaries internally.
  void Advise(Advice advice, size_t offset, size_t length) const;

 private:
  MappedFile(void* data, size_t size) : data_(data), size_(size) {}

  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace muds

#endif  // MUDS_COMMON_MMAP_FILE_H_
