#include "common/metrics.h"

namespace muds {

size_t Counter::CellIndex() {
  static std::atomic<size_t> next_thread_id{0};
  thread_local const size_t id =
      next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id % kNumCells;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(name);
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>(name);
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.reserve(counters_.size() + gauges_.size());
  // std::map iteration is sorted; counters and gauges are merged by name so
  // the combined snapshot stays sorted.
  auto c = counters_.begin();
  auto g = gauges_.begin();
  while (c != counters_.end() || g != gauges_.end()) {
    const bool take_counter =
        g == gauges_.end() ||
        (c != counters_.end() && c->first < g->first);
    if (take_counter) {
      snapshot.emplace_back(c->first, c->second->Value());
      ++c;
    } else {
      snapshot.emplace_back(g->first, g->second->Value());
      ++g;
    }
  }
  return snapshot;
}

MetricsSnapshot MetricsRegistry::Delta(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after) {
  MetricsSnapshot delta;
  delta.reserve(after.size());
  auto b = before.begin();
  for (const auto& [name, value] : after) {
    while (b != before.end() && b->first < name) ++b;
    const int64_t base =
        (b != before.end() && b->first == name) ? b->second : 0;
    delta.emplace_back(name, value - base);
  }
  return delta;
}

}  // namespace muds
