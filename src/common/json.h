#ifndef MUDS_COMMON_JSON_H_
#define MUDS_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace muds {
namespace json {

/// Minimal JSON document model — just enough for the observability layer to
/// validate its own output (trace files, metrics reports) without a
/// third-party dependency. Numbers are stored as doubles; the exporters only
/// emit integers and this is a validator, not a round-tripper.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool IsObject() const { return type == Type::kObject; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsString() const { return type == Type::kString; }
  bool IsNumber() const { return type == Type::kNumber; }

  /// Object member access; returns nullptr when absent or not an object.
  const Value* Find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Returns ParseError with a byte offset on failure.
Result<Value> Parse(std::string_view text);

/// Escapes `value` for embedding in JSON, surrounding quotes included.
std::string Quote(const std::string& value);

/// Serializes a Value back to compact JSON (no insignificant whitespace).
/// Numbers that are integral round-trip as integers; object members are
/// emitted in map order (sorted by key), so the output is deterministic.
/// The serving layer builds its response frames through this.
std::string Dump(const Value& value);

}  // namespace json
}  // namespace muds

#endif  // MUDS_COMMON_JSON_H_
