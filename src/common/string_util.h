#ifndef MUDS_COMMON_STRING_UTIL_H_
#define MUDS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace muds {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a", "", "b"}).
std::vector<std::string> SplitString(std::string_view text, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Formats a microsecond duration as a short human-readable string
/// ("12.3ms", "4.56s").
std::string FormatMicros(int64_t micros);

}  // namespace muds

#endif  // MUDS_COMMON_STRING_UTIL_H_
