#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <limits>

#include "common/json.h"

namespace muds {

namespace {

int64_t RawMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread nesting order: outer spans (earlier begin, later end) first.
bool NestingOrder(const TraceEvent& a, const TraceEvent& b) {
  if (a.tid != b.tid) return a.tid < b.tid;
  if (a.begin_us != b.begin_us) return a.begin_us < b.begin_us;
  return a.end_us > b.end_us;
}

void AppendEventPrefix(const TraceEvent& event, char ph, std::string* out) {
  *out += "{\"name\":";
  *out += json::Quote(event.name);
  *out += ",\"cat\":\"muds\",\"ph\":\"";
  *out += ph;
  *out += "\",\"pid\":1,\"tid\":";
  *out += std::to_string(event.tid);
  *out += ",\"ts\":";
  *out += std::to_string(ph == 'B' ? event.begin_us : event.end_us);
}

}  // namespace

TraceCollector::TraceCollector() { epoch_us_.store(RawMicros()); }

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

int64_t TraceCollector::NowMicros() const {
  return RawMicros() - epoch_us_.load(std::memory_order_relaxed);
}

void TraceCollector::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::shared_ptr<ThreadLog>& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    log->events.clear();
  }
  epoch_us_.store(RawMicros(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void TraceCollector::Stop() {
  enabled_.store(false, std::memory_order_release);
}

TraceCollector::ThreadLog* TraceCollector::LocalLog() {
  thread_local std::shared_ptr<ThreadLog> log = [this] {
    auto created = std::make_shared<ThreadLog>();
    std::lock_guard<std::mutex> lock(mutex_);
    created->tid = next_tid_++;
    logs_.push_back(created);
    return created;
  }();
  return log.get();
}

void TraceCollector::Record(std::string name, int64_t begin_us, int64_t end_us,
                            std::string args) {
  ThreadLog* log = LocalLog();
  TraceEvent event;
  event.name = std::move(name);
  event.args = std::move(args);
  event.begin_us = begin_us;
  event.end_us = end_us;
  event.tid = log->tid;
  std::lock_guard<std::mutex> lock(log->mutex);
  log->events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceCollector::Events() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const std::shared_ptr<ThreadLog>& log : logs_) {
      std::lock_guard<std::mutex> log_lock(log->mutex);
      events.insert(events.end(), log->events.begin(), log->events.end());
    }
  }
  std::stable_sort(events.begin(), events.end(), NestingOrder);
  return events;
}

size_t TraceCollector::NumEvents() const {
  size_t total = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::shared_ptr<ThreadLog>& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mutex);
    total += log->events.size();
  }
  return total;
}

std::string TraceCollector::ToChromeTraceJson() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"muds\"}}";

  // One named track per thread that recorded anything.
  std::vector<uint32_t> tids;
  for (const TraceEvent& event : events) {
    if (tids.empty() || tids.back() != event.tid) tids.push_back(event.tid);
  }
  for (uint32_t tid : tids) {
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"args\":{\"name\":\"thread ";
    out += std::to_string(tid);
    out += "\"}}";
  }

  // Emit matched B/E pairs per thread. Spans on one thread nest (RAII), so
  // a stack replay of the events in NestingOrder yields a sequence where
  // every B is closed by its own E in stack order — what trace viewers
  // expect even when zero-duration spans tie on timestamps.
  std::vector<const TraceEvent*> stack;
  uint32_t stack_tid = 0;
  const auto emit_entry = [&out](const TraceEvent& event, char ph) {
    out += ",\n";
    AppendEventPrefix(event, ph, &out);
    if (ph == 'B' && !event.args.empty()) {
      out += ",\"args\":";
      out += event.args;
    }
    out += '}';
  };
  const auto close_until = [&](int64_t begin_us) {
    while (!stack.empty() && stack.back()->end_us <= begin_us) {
      emit_entry(*stack.back(), 'E');
      stack.pop_back();
    }
  };
  for (const TraceEvent& event : events) {
    if (!stack.empty() && stack_tid != event.tid) {
      close_until(std::numeric_limits<int64_t>::max());
    }
    stack_tid = event.tid;
    close_until(event.begin_us);
    emit_entry(event, 'B');
    stack.push_back(&event);
  }
  close_until(std::numeric_limits<int64_t>::max());

  out += "\n]}\n";
  return out;
}

Status TraceCollector::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot create " + path);
  out << ToChromeTraceJson();
  if (!out) return Status::IoError("error writing " + path);
  return Status::Ok();
}

TraceSpan::TraceSpan(PhaseTimings* timings, std::string name, std::string args)
    : timings_(timings),
      name_(std::move(name)),
      args_(std::move(args)),
      recording_(TraceCollector::Global().enabled()) {
  if (recording_) begin_us_ = TraceCollector::Global().NowMicros();
}

TraceSpan::~TraceSpan() {
  if (timings_ != nullptr) timings_->Add(name_, timer_.ElapsedMicros());
  if (recording_) {
    TraceCollector& collector = TraceCollector::Global();
    if (collector.enabled()) {
      collector.Record(std::move(name_), begin_us_, collector.NowMicros(),
                       std::move(args_));
    }
  }
}

PhaseTimings PhaseTimingsFromTrace(const std::vector<TraceEvent>& events) {
  std::vector<const TraceEvent*> by_begin;
  by_begin.reserve(events.size());
  for (const TraceEvent& event : events) by_begin.push_back(&event);
  std::stable_sort(by_begin.begin(), by_begin.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->begin_us < b->begin_us;
                   });
  PhaseTimings timings;
  for (const TraceEvent* event : by_begin) {
    timings.Add(event->name, event->end_us - event->begin_us);
  }
  return timings;
}

}  // namespace muds
