#ifndef MUDS_COMMON_TIMER_H_
#define MUDS_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace muds {

/// Wall-clock stopwatch with microsecond resolution.
class Timer {
 public:
  /// Starts the timer at construction.
  Timer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Elapsed time in seconds, as a double.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named phase durations; drives the Figure 8 experiment
/// (per-phase breakdown of MUDS) and the ProfilingResult timings.
///
/// This is the aggregated *view* of the trace spans: phases are timed by
/// TraceSpan / MUDS_TRACE_SPAN (common/trace.h), which adds each completed
/// interval here and, when tracing is enabled, records the same interval as
/// a TraceEvent. PhaseTimingsFromTrace() rebuilds this view from a span
/// list. Not thread-safe — parallel phases time themselves inside the task
/// and merge afterwards.
class PhaseTimings {
 public:
  /// Adds `micros` to the phase named `name`, creating it on first use.
  /// Phases keep their first-use order.
  void Add(const std::string& name, int64_t micros) {
    for (auto& entry : entries_) {
      if (entry.first == name) {
        entry.second += micros;
        return;
      }
    }
    entries_.emplace_back(name, micros);
  }

  /// Returns the accumulated microseconds for `name`, or 0 if never added.
  int64_t Micros(const std::string& name) const {
    for (const auto& entry : entries_) {
      if (entry.first == name) return entry.second;
    }
    return 0;
  }

  /// Sum over all phases, in microseconds.
  int64_t TotalMicros() const {
    int64_t total = 0;
    for (const auto& entry : entries_) total += entry.second;
    return total;
  }

  /// Phases in first-use order.
  const std::vector<std::pair<std::string, int64_t>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, int64_t>> entries_;
};

}  // namespace muds

#endif  // MUDS_COMMON_TIMER_H_
