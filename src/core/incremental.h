#ifndef MUDS_CORE_INCREMENTAL_H_
#define MUDS_CORE_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/evidence.h"
#include "core/profiler.h"
#include "data/relation.h"
#include "pli/pli_cache.h"

namespace muds {

/// Maintains the complete IND/UCC/FD profile of a growing relation under
/// appended row batches, without recomputing from scratch.
///
/// The construction runs one ordinary from-scratch profile (via the
/// configured algorithm) and then keeps the relation, a PliCache over it,
/// and the three dependency sets alive. Each Append() absorbs a batch and
/// repairs the sets using the detection-vs-rediscovery split of Bläsius et
/// al. (arXiv 2103.13331): *detecting* which dependencies an append can
/// have broken is far cheaper than rediscovering any of them, so the bulk
/// of the lattice is never touched.
///
/// Per batch:
///   1. Rows duplicating an existing (or earlier batch) row are dropped —
///      the profile of a deduplicated instance is unchanged by duplicates
///      (§3), so such rows are no-ops. An entirely-duplicate batch returns
///      immediately.
///   2. Relation::AppendBatch merges dictionaries in place and
///      PliCache::OnAppend patches the pinned single-column PLIs via CSR
///      merge-append while invalidating every derived (and spilled) entry.
///   3. INDs are recomputed by SPIDER's dictionary merge — appends can both
///      break INDs (new unmatched values in a dependent column) and create
///      them (new values in a referenced column closing a gap), but the
///      sorted post-merge dictionaries make the full recomputation one
///      cheap multiway merge, with no lattice above it.
///   4. UCCs/FDs can only *break* under appended rows — any set unique now
///      was unique before — so maintenance is: a cheap screen (a dependency
///      over attribute set S can only break if some appended row collides
///      with another row in every column of S), re-validation of the
///      screened survivors against the patched PLIs, and, where a minimal
///      UCC or FD actually broke, a localized upward lattice re-exploration
///      seeded at the broken sets and pruned by a SetTrie of the still-valid
///      minima. Completeness: every new minimal UCC/FD-LHS is a strict
///      superset of some broken old minimal one, and all sets strictly
///      between them are invalid, so the upward walk reaches it.
///
/// After every Append() the three sets are bit-identical to a from-scratch
/// profile of the grown (deduplicated) instance — the muds_diff `--append`
/// axis asserts exactly that against the reference oracle.
///
/// Not thread-safe: one Append at a time (internally it parallelizes over
/// the configured thread count; results are identical for every count).
class IncrementalProfiler {
 public:
  /// Work counters for the incremental path, accumulated over all batches
  /// (also exported as `incremental.*` registry metrics).
  struct Stats {
    int64_t batches = 0;
    int64_t appended_rows = 0;        // After in-batch/cross-batch dedup.
    int64_t duplicates_dropped = 0;
    int64_t revalidated = 0;          // Screened-in deps re-checked on data.
    int64_t screened_out = 0;         // Deps the witness screen cleared.
    int64_t broken = 0;               // Previously-minimal deps that fell.
    int64_t rediscovered = 0;         // New minimal deps from re-exploration.
    int64_t explored_nodes = 0;       // Lattice nodes the re-exploration hit.
    int64_t evidence_hits = 0;        // Candidates refuted by the evidence
                                      // store instead of a PLI check (0
                                      // unless sampling is enabled).
  };

  /// Profiles `base` from scratch (deduplicating first, like
  /// ProfileRelation) and becomes the maintained state. `options` drives
  /// both the initial run and all subsequent maintenance (threads, PLI
  /// budget/impl, spill tier).
  IncrementalProfiler(const Relation& base, const ProfileOptions& options);

  IncrementalProfiler(const IncrementalProfiler&) = delete;
  IncrementalProfiler& operator=(const IncrementalProfiler&) = delete;

  /// Appends `batch` (same schema as the base relation) and repairs the
  /// dependency sets. Returns InvalidArgument on a schema mismatch; the
  /// state is unchanged on error.
  Status Append(const Relation& batch);

  /// The maintained relation (deduplicated, including all appended rows).
  const Relation& relation() const { return *relation_; }

  const std::vector<Ind>& inds() const { return inds_; }
  const std::vector<ColumnSet>& uccs() const { return uccs_; }
  const std::vector<Fd>& fds() const { return fds_; }
  const Stats& stats() const { return stats_; }

  /// Assembles a ProfilingResult over the current state: the three sets,
  /// the base-run counters plus the `incremental.*` counters, accumulated
  /// phase timings, and the metrics delta since construction.
  ProfilingResult Result() const;

 private:
  // Hash of a row's string values (value identity survives the dictionary
  // remaps appends perform, codes do not).
  static uint64_t HashRowValues(const Relation& relation, RowId row);
  static bool EqualRows(const Relation& a, RowId row_a, const Relation& b,
                        RowId row_b);

  // Dependency repair phases of one Append (relation_/cache_ already
  // patched). `witness` is the SetTrie of per-appended-row collision sets.
  void MaintainUccs(const class SetTrie& witness);
  void MaintainFds(const class SetTrie& witness);

  ProfileOptions options_;
  MetricsSnapshot before_;                 // Registry snapshot at ctor.
  std::unique_ptr<ThreadPool> pool_;
  std::optional<Relation> relation_;       // Stable address; mutated in place.
  std::unique_ptr<PliCache> cache_;
  // Sampled-pair evidence, persisted across batches (sampling enabled
  // only). Old pairs stay valid under appends — existing values never
  // change — and each batch seeds fresh pairs from its collision columns,
  // so survivors the sampler can refute skip their PLI re-validation.
  std::unique_ptr<EvidenceStore> evidence_;

  std::vector<Ind> inds_;
  std::vector<ColumnSet> uccs_;
  std::vector<Fd> fds_;

  // Value-hash → rows, over relation_: the cross-batch duplicate filter.
  std::unordered_map<uint64_t, std::vector<RowId>> row_index_;

  Stats stats_;
  PhaseTimings timings_;
  std::vector<std::pair<std::string, int64_t>> base_counters_;
  int64_t duplicates_removed_ = 0;
  Algorithm algorithm_used_ = Algorithm::kMuds;
};

}  // namespace muds

#endif  // MUDS_CORE_INCREMENTAL_H_
