#ifndef MUDS_CORE_PROFILER_H_
#define MUDS_CORE_PROFILER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/spill.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/muds.h"
#include "data/csv.h"
#include "data/metadata.h"
#include "data/relation.h"

namespace muds {

/// Which profiling strategy Profile() runs (§6 compares all three).
enum class Algorithm {
  /// MUDS (§5): the holistic, inter-task-pruning algorithm.
  kMuds,
  /// Holistic FUN (§3.2): shared load + FUN returning its UCC byproduct.
  kHolisticFun,
  /// Sequential SPIDER, DUCC, FUN with no sharing (the paper's baseline;
  /// the CSV entry points parse the input once per task to model the
  /// unshared reads).
  kBaseline,
  /// The paper's closing recommendation (§6.5, §8): pick MUDS or Holistic
  /// FUN per input. Column-count rule by default ("making the decision
  /// based on the number of columns is easier and similarly precise"),
  /// with `ProfileOptions::auto_policy` switching to the UCC-size rule
  /// ("one could choose MUDS' FD discovery if many, large UCCs have been
  /// found").
  kAuto,
};

const char* AlgorithmName(Algorithm algorithm);

/// How Algorithm::kAuto decides between MUDS and Holistic FUN.
enum class AutoPolicy {
  /// §6.5: "the average size of minimal FDs correlates with the number of
  /// columns, [so] we can choose MUDS or Holistic FUN based on the number
  /// of columns." MUDS for >= auto_column_threshold active columns.
  kColumnCount,
  /// §6.5's alternative: discover the minimal UCCs first (they are needed
  /// either way) and pick MUDS' FD discovery "if many, large UCCs have
  /// been found". MUDS when the mean minimal-UCC size is >= 2 and UCCs
  /// cover most columns; Holistic FUN otherwise.
  kUccShape,
};

/// Options for the Profile* entry points.
struct ProfileOptions {
  Algorithm algorithm = Algorithm::kMuds;
  /// Seed for randomized traversals (MUDS / baseline DUCC).
  uint64_t seed = 1;
  /// Worker threads for the parallel engine (0 = hardware concurrency,
  /// 1 = the deterministic sequential path). The discovered IND/UCC/FD
  /// sets are identical for every thread count; overrides
  /// `muds.num_threads` the same way `seed` overrides `muds.seed`.
  int num_threads = 1;
  /// Byte budget for the PLI caches (MUDS' shared cache and the baseline's
  /// private DUCC cache; 0 = unlimited). Overrides `muds.pli_budget_bytes`
  /// the same way `seed` overrides `muds.seed`. The discovered dependency
  /// sets are identical for every budget — a tight budget only trades
  /// rebuild work for memory.
  size_t pli_budget_bytes = size_t{1} << 30;
  /// PLI representation strategy (--pli-impl). Overrides `muds.pli_impl`
  /// the same way `seed` overrides `muds.seed` and applies to every
  /// engine. The discovered dependency sets are identical for every
  /// choice; the axis exists for A/B debugging and perf work.
  PliImpl pli_impl = PliImpl::kAuto;
  /// Tiered-storage configuration (--spill-dir / --spill-budget-mb),
  /// applied to every engine: PLI-cache evictions demote to a disk spill
  /// file and SPIDER streams disk-resident runs. Overrides `muds.spill`
  /// the same way `seed` overrides `muds.seed`. The discovered dependency
  /// sets are identical with spill on or off.
  SpillConfig spill;
  /// Sampling-first pre-validation (--sample-pairs / --sample-seed),
  /// applied to every engine: candidates are probed against a sampled
  /// evidence store of violating row pairs before any PLI work. Overrides
  /// `muds.sampling` the same way `seed` overrides `muds.seed`.
  /// Refutation-only, so the discovered dependency sets are identical at
  /// every pair budget and seed.
  SamplingConfig sampling;
  /// MUDS-specific knobs (its `seed` field is overridden by `seed` above).
  MudsOptions muds;
  /// CSV dialect for the CSV entry points.
  CsvOptions csv;
  /// kAuto selection rule and its column threshold ("Muds usually performs
  /// best on datasets with ten or more columns", §6.5).
  AutoPolicy auto_policy = AutoPolicy::kColumnCount;
  int auto_column_threshold = 10;
};

/// The holistic profiling answer: all three metadata types for one
/// relation, plus per-phase timings and work counters.
struct ProfilingResult {
  std::vector<Ind> inds;
  std::vector<ColumnSet> uccs;
  std::vector<Fd> fds;

  /// Wall-clock per phase, in first-execution order; phase names follow the
  /// paper ("SPIDER", "DUCC", "minimizeFDs", ...; plus "load" and "dedup").
  PhaseTimings timings;

  /// Work counters ("fd_checks", "pli_intersects", ...).
  std::vector<std::pair<std::string, int64_t>> counters;

  /// Delta of the process-wide metrics registry (common/metrics.h) over
  /// this profiling run: every registered counter/gauge, sorted by name.
  /// Names a metric even when its delta is zero, so consumers can rely on
  /// the full instrument set being present.
  MetricsSnapshot metrics;

  /// Duplicate rows dropped by preprocessing (§3).
  int64_t duplicates_removed = 0;

  /// The algorithm that actually ran (differs from the requested one only
  /// for Algorithm::kAuto).
  Algorithm algorithm_used = Algorithm::kMuds;

  /// Column names of the profiled relation, for rendering the output.
  std::vector<std::string> column_names;

  /// Convenience: total runtime over all phases, in seconds.
  double TotalSeconds() const {
    return static_cast<double>(timings.TotalMicros()) / 1e6;
  }
};

/// Profiles an already-loaded relation. Rows are deduplicated first (§3).
ProfilingResult ProfileRelation(const Relation& relation,
                                const ProfileOptions& options = {});

/// Parses CSV text and profiles it. For the baseline algorithm the text is
/// parsed once per profiling task (three times), reproducing the unshared
/// I/O cost the holistic algorithms eliminate.
Result<ProfilingResult> ProfileCsvString(std::string_view text,
                                         const ProfileOptions& options = {});

/// Reads a CSV file and profiles it (same baseline re-read semantics).
Result<ProfilingResult> ProfileCsvFile(const std::string& path,
                                       const ProfileOptions& options = {});

/// Profiles `base` and then applies each element of `appends` — headerless
/// row batches in the base's dialect — as delta batches through
/// IncrementalProfiler instead of re-profiling the concatenation: the
/// serving layer's append fast path. The result is bit-identical to a
/// from-scratch profile of the byte concatenation base + appends[0] + ....
/// Rejects NullSemantics::kNullUnequal when `appends` is non-empty (its
/// per-file NULL sentinels would break that equivalence) and batches whose
/// column count differs from the base.
Result<ProfilingResult> ProfileCsvStringWithAppends(
    std::string_view base, const std::vector<std::string>& appends,
    const ProfileOptions& options = {});


}  // namespace muds

#endif  // MUDS_CORE_PROFILER_H_
