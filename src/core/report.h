#ifndef MUDS_CORE_REPORT_H_
#define MUDS_CORE_REPORT_H_

#include <string>

#include "core/profiler.h"

namespace muds {

/// Serializes a profiling result as JSON: algorithm, column names,
/// dependencies (with column *names*, not indices), and per-phase timings.
/// Stable field order; safe escaping for arbitrary cell/column content.
std::string ProfilingResultToJson(const ProfilingResult& result);

/// Renders the human-readable report the CLI prints: header counts plus —
/// unless `summary_only` — every dependency and the phase timings.
std::string ProfilingResultToText(const ProfilingResult& result,
                                  bool summary_only = false);

/// Escapes a string for embedding in JSON (quotes included).
std::string JsonQuote(const std::string& value);

}  // namespace muds

#endif  // MUDS_CORE_REPORT_H_
