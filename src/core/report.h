#ifndef MUDS_CORE_REPORT_H_
#define MUDS_CORE_REPORT_H_

#include <string>

#include "core/profiler.h"

namespace muds {

/// Serializes a profiling result as JSON: algorithm, column names,
/// dependencies (with column *names*, not indices), per-phase timings, and
/// the registry metrics delta of the run ("metrics" object, always present).
/// Stable field order; safe escaping for arbitrary cell/column content.
std::string ProfilingResultToJson(const ProfilingResult& result);

/// Renders the human-readable report the CLI prints: header counts plus —
/// unless `summary_only` — every dependency and the phase timings.
/// `show_metrics` appends the registry metrics delta (CLI --metrics).
std::string ProfilingResultToText(const ProfilingResult& result,
                                  bool summary_only = false,
                                  bool show_metrics = false);

/// Escapes a string for embedding in JSON (quotes included).
std::string JsonQuote(const std::string& value);

}  // namespace muds

#endif  // MUDS_CORE_REPORT_H_
