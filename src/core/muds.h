#ifndef MUDS_CORE_MUDS_H_
#define MUDS_CORE_MUDS_H_

#include <cstdint>
#include <vector>

#include "common/spill.h"
#include "common/timer.h"
#include "core/sampling.h"
#include "data/metadata.h"
#include "data/relation.h"
#include "pli/position_list_index.h"
#include "ucc/ducc.h"

namespace muds {

/// Tuning knobs for MUDS (§5).
struct MudsOptions {
  /// Seed for the random-walk traversals (DUCC and the R\Z sub-lattices).
  uint64_t seed = 1;

  /// Worker threads for the parallel phases (single-column PLI
  /// construction, the SPIDER/PLI load overlap, and the independent
  /// per-right-hand-side sub-lattice traversals of "calculateRZ" and the
  /// exhaustive completion). 0 = hardware concurrency; 1 = the sequential
  /// code path, bit-identical to the pre-parallel implementation. Every
  /// per-RHS traversal derives its own seed from `seed`, so the discovered
  /// IND/UCC/FD sets are identical for every thread count.
  int num_threads = 1;

  /// §5.4: use the UCC prefix tree for subset/superset look-ups. Disabling
  /// falls back to linear scans over the UCC list (the "naive
  /// implementation" the paper compares against); results are identical.
  bool use_prefix_tree = true;

  /// Use already-discovered minimal FDs to skip shadowed-phase candidates
  /// whose left-hand side is dominated by a stored FD (ablation knob; see
  /// bench_ablation). Off = validate every candidate against the data, as
  /// the pseudo-code of Algorithms 2/4 does.
  bool shadowed_knowledge_pruning = true;

  /// How hard to chase shadowed FDs (§4.3, §5.3).
  enum class Completion {
    /// The paper's Algorithms 2-4 iterated to a fixpoint over newly found
    /// FDs. **Known to be incomplete** on adversarial inputs: the extension
    /// mechanism can fail to propose a shadowed left-hand side at all (see
    /// MudsTest.PaperShadowedReconstructionIsIncomplete and DESIGN.md).
    /// Kept for studying the paper's algorithm; not the default.
    kFixpoint,
    /// After the fixpoint, certify completeness per right-hand side in Z
    /// with a lattice traversal seeded with everything the earlier phases
    /// learned (known FDs, known non-FDs, UCC key pruning). Guarantees an
    /// exact result; the default.
    kExhaustive,
  };
  Completion completion = Completion::kExhaustive;

  /// Run the paper's Algorithm 2-4 shadowed-FD reconstruction before the
  /// completion pass. Under kExhaustive this is optional: everything it
  /// finds (including every failed validation) seeds the certification
  /// sweep, so it can pay for itself or be pure overhead depending on the
  /// dataset — bench_ablation quantifies the trade-off. Under kFixpoint it
  /// always runs (it is the only shadowed-FD discovery there).
  bool run_paper_shadowed_phase = true;

  /// Byte budget for the shared PLI cache (0 = unlimited). Evicted entries
  /// are transparently rebuilt, so the discovered dependency sets are
  /// identical for every budget; only runtime and the cache counters vary.
  size_t pli_budget_bytes = size_t{1} << 30;  // PliCache::kDefaultBudgetBytes

  /// PLI representation strategy for the shared cache (--pli-impl). The
  /// discovered IND/UCC/FD sets are identical for every choice; kAuto
  /// attaches the low-cardinality bitmap sidecar where it pays off, kCsr
  /// forces the flat-CSR reference layout, kBitmap forces the sidecar
  /// whenever representable.
  PliImpl pli_impl = PliImpl::kAuto;

  /// Tiered-storage configuration (--spill-dir / --spill-budget-mb). When
  /// enabled, PLI-cache evictions demote entries to a disk spill file
  /// (reloaded on the next probe instead of rebuilt by intersect chains)
  /// and SPIDER switches to its external sort-merge over disk-resident
  /// runs. The discovered dependency sets are identical with spill on or
  /// off; only runtime, memory, and the spill counters differ. The byte
  /// budget applies to each spill file (the PLI tier and the SPIDER runs
  /// use separate, independently capped files).
  SpillConfig spill;

  /// Sampling-first pre-validation (--sample-pairs / --sample-seed). With a
  /// positive pair budget, a cluster-stratified sample of row pairs drawn
  /// from the pinned single-column PLIs is materialized into an evidence
  /// store (agreement bitsets indexed by a negative-cover SetTrie) right
  /// after SPIDER. Every candidate in DUCC and the FD phases is probed
  /// against the store before any PLI work: one subset probe refutes it
  /// outright. Refutation-only — a sampled violation is definite, absence
  /// proves nothing — so the discovered IND/UCC/FD sets are bit-identical
  /// at every pair budget, seed, and thread count.
  SamplingConfig sampling;
};

/// Counters describing what MUDS did; benches report these alongside
/// runtimes (§6.4 attributes the cost to FD checks and PLI intersects).
struct MudsStats {
  int64_t fd_checks_minimize = 0;        // Phase "minimizeFDs" (§5.1).
  int64_t fd_checks_rz = 0;              // Phase "calculate R\Z" (§5.2).
  int64_t fd_checks_shadowed = 0;        // Phases of §5.3.
  int64_t connector_lookups = 0;
  int64_t shadowed_tasks = 0;
  int64_t shadowed_rounds = 0;
  int64_t pli_intersects = 0;
  /// Shared PLI cache effectiveness (§2.2-§2.3: one PLI store serves the
  /// UCC and FD tasks): probe outcomes, second-chance evictions under the
  /// byte budget, and the bytes cached when the run finished.
  int64_t pli_cache_hits = 0;
  int64_t pli_cache_misses = 0;
  int64_t pli_cache_evictions = 0;
  int64_t pli_cache_bytes = 0;
  /// Bytes pinned by the single-column/∅ working set, and the cold-tier
  /// traffic when a spill directory is configured (0 otherwise).
  int64_t pli_cache_pinned_bytes = 0;
  int64_t pli_cache_spill_writes = 0;
  int64_t pli_cache_spill_reloads = 0;
  int64_t pli_cache_spill_bytes = 0;
  /// Threads the run actually used (MudsOptions::num_threads resolved, so
  /// 0 shows up as the hardware concurrency).
  int num_threads_used = 1;
  /// Sub-lattice traversal tasks dispatched to the pool by the parallel
  /// phases (calculateRZ + exhaustiveCompletion) — the achieved task-level
  /// parallelism; 0 on the sequential path.
  int64_t parallel_tasks = 0;
  /// Sampling-first pre-validation: pairs sampled (plus fed back by failed
  /// full validations), candidates refuted by an evidence probe instead of
  /// a PLI check, and total probe time. All 0 when sampling is disabled.
  int64_t sampling_pairs = 0;
  int64_t sampling_refuted = 0;
  int64_t sampling_fed_back = 0;
  int64_t sampling_probe_ns = 0;
  Ducc::Stats ducc;
};

/// Full output of a MUDS run: the three metadata types plus the per-phase
/// wall-clock breakdown that drives the Figure 8 experiment.
struct MudsResult {
  std::vector<Ind> inds;
  std::vector<ColumnSet> uccs;
  std::vector<Fd> fds;
  PhaseTimings timings;
  MudsStats stats;
};

/// MUDS (§5): the holistic profiling algorithm. One pass over the input
/// computes unary INDs (SPIDER) and the column PLIs; DUCC then finds the
/// minimal UCCs on those PLIs; finally a three-phase FD discovery exploits
/// the UCCs: (1) top-down minimization of FDs between connected minimal
/// UCCs driven by the connector look-up, (2) random-walk sub-lattice
/// traversals for right-hand sides outside every minimal UCC, and
/// (3) discovery and minimization of shadowed FDs.
///
/// The Profiler facade deduplicates rows before calling this (§3).
class Muds {
 public:
  /// Runs MUDS on `relation` (which must already be duplicate-row free).
  static MudsResult Run(const Relation& relation,
                        const MudsOptions& options = {});
};

/// The connector look-up of §5.1 / Table 2: the union of all minimal UCCs
/// that are supersets of `connector`, minus the connector itself — the
/// candidate right-hand sides for left-hand sides split off `connector`.
ColumnSet ConnectorLookup(const std::vector<ColumnSet>& minimal_uccs,
                          const ColumnSet& connector);

}  // namespace muds

#endif  // MUDS_CORE_MUDS_H_
