#ifndef MUDS_CORE_HOLISTIC_FUN_H_
#define MUDS_CORE_HOLISTIC_FUN_H_

#include "common/timer.h"
#include "data/metadata.h"
#include "data/relation.h"

namespace muds {

/// Result of a Holistic FUN run (shape shared with the baseline).
struct HolisticResult {
  std::vector<Ind> inds;
  std::vector<ColumnSet> uccs;
  std::vector<Fd> fds;
  PhaseTimings timings;
  int64_t fd_checks = 0;
  int64_t pli_intersects = 0;
};

/// Holistic FUN (§3.2): the "FDs and UCCs simultaneously" holistic
/// algorithm. SPIDER runs on the shared load (one scan feeds the IND task
/// and the PLI construction), and FUN — which must traverse every minimal
/// UCC anyway, because minimal UCCs are free sets (Lemma 3) — stores and
/// returns them instead of discarding them. No additional checks are
/// needed, so the FD runtime is unchanged.
class HolisticFun {
 public:
  static HolisticResult Run(const Relation& relation);
};

/// The evaluation baseline (§6): the sequential execution of the three
/// single-task state-of-the-art algorithms — SPIDER (INDs), DUCC (UCCs),
/// FUN (FDs) — with no sharing: DUCC and FUN each build their own PLIs.
/// (The unshared *file read* is modeled by the Profiler facade, which
/// parses the input once per algorithm for the baseline.)
class Baseline {
 public:
  static HolisticResult Run(const Relation& relation, uint64_t seed = 1);
};

}  // namespace muds

#endif  // MUDS_CORE_HOLISTIC_FUN_H_
