#ifndef MUDS_CORE_HOLISTIC_FUN_H_
#define MUDS_CORE_HOLISTIC_FUN_H_

#include "common/spill.h"
#include "common/timer.h"
#include "core/sampling.h"
#include "data/metadata.h"
#include "data/relation.h"
#include "pli/position_list_index.h"

namespace muds {

/// Result of a Holistic FUN run (shape shared with the baseline).
struct HolisticResult {
  std::vector<Ind> inds;
  std::vector<ColumnSet> uccs;
  std::vector<Fd> fds;
  PhaseTimings timings;
  int64_t fd_checks = 0;
  int64_t pli_intersects = 0;
  /// PLI-cache probe/eviction counters (baseline DUCC only; Holistic FUN
  /// materializes its lattice PLIs outside the cache).
  int64_t pli_cache_hits = 0;
  int64_t pli_cache_misses = 0;
  int64_t pli_cache_evictions = 0;
  int64_t pli_cache_spill_writes = 0;
  int64_t pli_cache_spill_reloads = 0;
  /// Threads the run actually used (0 in `num_threads` resolves to the
  /// hardware concurrency).
  int num_threads_used = 1;
  /// Sampling-first pre-validation counters (0 with sampling disabled).
  int64_t sampling_pairs = 0;
  int64_t sampling_refuted = 0;
  int64_t sampling_fed_back = 0;
  int64_t sampling_probe_ns = 0;
};

/// Holistic FUN (§3.2): the "FDs and UCCs simultaneously" holistic
/// algorithm. SPIDER runs on the shared load (one scan feeds the IND task
/// and the PLI construction), and FUN — which must traverse every minimal
/// UCC anyway, because minimal UCCs are free sets (Lemma 3) — stores and
/// returns them instead of discarding them. No additional checks are
/// needed, so the FD runtime is unchanged.
class HolisticFun {
 public:
  /// With `num_threads > 1` the SPIDER and FUN tasks — which read disjoint
  /// state — run concurrently; the discovered dependency sets are identical
  /// for every thread count. Phase timings then measure each task's own
  /// elapsed time, so they can sum to more than the wall clock.
  /// `pli_impl` selects the PLI representation FUN materializes its
  /// lattice with (the discovered sets are identical for every choice).
  /// `spill` (when enabled) routes SPIDER through its external sort-merge.
  /// `sampling` (when enabled) lets FUN refute Lemma-1 candidates against a
  /// sampled evidence store first; refutation-only, identical results.
  static HolisticResult Run(const Relation& relation, int num_threads = 1,
                            PliImpl pli_impl = PliImpl::kAuto,
                            const SpillConfig& spill = SpillConfig(),
                            const SamplingConfig& sampling = SamplingConfig());
};

/// The evaluation baseline (§6): the sequential execution of the three
/// single-task state-of-the-art algorithms — SPIDER (INDs), DUCC (UCCs),
/// FUN (FDs) — with no sharing: DUCC and FUN each build their own PLIs.
/// (The unshared *file read* is modeled by the Profiler facade, which
/// parses the input once per algorithm for the baseline.)
/// The three algorithms stay strictly sequential relative to each other —
/// that ordering is what the baseline models — but `num_threads` still
/// parallelizes DUCC's private column-PLI construction, which is
/// task-internal work.
class Baseline {
 public:
  /// `pli_budget_bytes` bounds DUCC's private PLI cache (0 = unlimited);
  /// the discovered dependency sets are identical for every budget.
  /// `spill` (when enabled) gives that cache a cold tier and routes SPIDER
  /// through the external sort-merge. `sampling` (when enabled) gives DUCC
  /// and FUN each a private sampled evidence store for candidate
  /// refutation — no sharing, matching the baseline's no-sharing contract.
  static HolisticResult Run(const Relation& relation, uint64_t seed = 1,
                            int num_threads = 1,
                            size_t pli_budget_bytes = size_t{1} << 30,
                            PliImpl pli_impl = PliImpl::kAuto,
                            const SpillConfig& spill = SpillConfig(),
                            const SamplingConfig& sampling = SamplingConfig());
};

}  // namespace muds

#endif  // MUDS_CORE_HOLISTIC_FUN_H_
