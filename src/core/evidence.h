#ifndef MUDS_CORE_EVIDENCE_H_
#define MUDS_CORE_EVIDENCE_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>

#include "data/relation.h"
#include "pli/position_list_index.h"
#include "setops/column_set.h"
#include "setops/set_trie.h"

namespace muds {

/// Negative-cover evidence store for sampling-first hybrid validation.
///
/// Each recorded row pair (r1, r2) contributes its *disagreement set*
/// D = {c : r1 and r2 differ on column c}. A stored D is a definite
/// counterexample template:
///   - a UCC candidate X is refuted iff some pair agrees on all of X,
///     i.e. some stored D satisfies D ∩ X = ∅ (D ⊆ universe \ X);
///   - an FD candidate X → a is refuted iff some pair agrees on X but
///     differs on a, i.e. some stored D ⊆ universe \ X contains a.
/// Both probes are single subset walks over a SetTrie holding the
/// *subset-minimal* disagreement sets: a set dominated by a stored subset
/// is dropped and stored supersets are evicted on insert, so the cover
/// stays a small antichain and probes stay cheap no matter how many pairs
/// are sampled. Refuting a candidate costs zero PLI work.
///
/// Refutation-only invariant: a probe hit proves a violating pair exists in
/// the data, so refuted candidates are exactly the candidates full
/// validation would reject — the discovered dependency sets are
/// bit-identical at every sampling level, thread count, and feedback
/// schedule. A probe miss proves nothing and the candidate proceeds to the
/// full PLI check. Only the work counters vary with sampling.
///
/// Thread safety: probes take a shared lock, AddPair an exclusive one, so
/// the parallel lattice phases probe concurrently and feed back safely.
class EvidenceStore {
 public:
  /// The store records pairs of `relation`'s rows; the relation must
  /// outlive the store and its row values must not change (appending rows
  /// is fine — old disagreement sets stay valid because appends never
  /// alter existing values, and dictionary remaps preserve equality).
  explicit EvidenceStore(const Relation& relation);

  EvidenceStore(const EvidenceStore&) = delete;
  EvidenceStore& operator=(const EvidenceStore&) = delete;

  /// Records the disagreement set of rows `r1` and `r2`. Returns true if
  /// the set was new. Pairs of identical rows (empty disagreement set) are
  /// ignored — they can only occur on non-deduplicated input and refute
  /// nothing. `fed_back` marks pairs discovered by full validation (the
  /// adaptive feedback loop) rather than the up-front sampler.
  bool AddPair(RowId r1, RowId r2, bool fed_back);

  /// True if some recorded pair proves the UCC candidate `columns` invalid.
  bool RefutesUcc(const ColumnSet& columns) const;

  /// True if some recorded pair proves the FD lhs → rhs invalid.
  bool RefutesFd(const ColumnSet& lhs, int rhs) const;

  /// All right-hand sides refutable for `lhs` in one trie walk: the union
  /// of every stored disagreement set disjoint from `lhs`. Exactly the
  /// candidates a batched CheckFds can mark checked-and-invalid up front.
  ColumnSet RefutedRhs(const ColumnSet& lhs) const;

  /// Feedback from a failed UCC validation: records the first two rows of
  /// `pli`'s first cluster (a definite duplicate pair the sampler missed),
  /// so sibling candidates get refuted for free.
  void FeedBackUccViolation(const Pli& pli);

  /// Feedback from a failed FD validation: scans `lhs_pli`'s clusters for
  /// the first pair of rows disagreeing on `rhs` (one must exist when the
  /// refinement check failed) and records it.
  void FeedBackFdViolation(const Pli& lhs_pli, const Column& rhs);

  /// Registers the sampling.* registry counters eagerly, so metric reports
  /// list them (as zero deltas) even in runs with sampling disabled — the
  /// CI counter-presence check relies on that.
  static void RegisterMetrics();

  struct Stats {
    int64_t pairs = 0;     // Pairs recorded (sampled + fed back).
    int64_t refuted = 0;   // Candidates a probe refuted.
    int64_t fed_back = 0;  // Pairs contributed by the feedback loop.
    int64_t probe_ns = 0;  // Wall time spent inside probes.
  };
  Stats GetStats() const;

  /// Distinct disagreement sets stored.
  size_t Size() const;

 private:
  const Relation* relation_;
  ColumnSet universe_;
  mutable std::shared_mutex mutex_;
  SetTrie negative_cover_;
  std::atomic<int64_t> pairs_{0};
  // refuted_/probe_ns_ are mutated by the (const) probe methods.
  mutable std::atomic<int64_t> refuted_{0};
  std::atomic<int64_t> fed_back_{0};
  mutable std::atomic<int64_t> probe_ns_{0};
};

}  // namespace muds

#endif  // MUDS_CORE_EVIDENCE_H_
