#include "core/muds.h"

#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/evidence.h"
#include "fd/fd_util.h"
#include "ind/spider.h"
#include "pli/pli_cache.h"
#include "setops/antichain.h"
#include "setops/hitting_set.h"
#include "setops/set_trie.h"
#include "ucc/lattice_traversal.h"

namespace muds {

ColumnSet ConnectorLookup(const std::vector<ColumnSet>& minimal_uccs,
                          const ColumnSet& connector) {
  ColumnSet result;
  for (const ColumnSet& ucc : minimal_uccs) {
    if (connector.IsSubsetOf(ucc)) result = result.Union(ucc);
  }
  return result.Difference(connector);
}

namespace {

// Minimal-UCC store with the §5.4 prefix tree, optionally degraded to
// linear scans for the ablation benchmark.
class UccStore {
 public:
  UccStore(std::vector<ColumnSet> uccs, bool use_trie)
      : list_(std::move(uccs)), use_trie_(use_trie) {
    if (use_trie_) {
      for (const ColumnSet& ucc : list_) trie_.Insert(ucc);
    }
  }

  std::vector<ColumnSet> SupersetsOf(const ColumnSet& set) const {
    if (use_trie_) return trie_.CollectSupersetsOf(set);
    std::vector<ColumnSet> out;
    for (const ColumnSet& ucc : list_) {
      if (set.IsSubsetOf(ucc)) out.push_back(ucc);
    }
    return out;
  }

  std::vector<ColumnSet> SubsetsOf(const ColumnSet& set) const {
    if (use_trie_) return trie_.CollectSubsetsOf(set);
    std::vector<ColumnSet> out;
    for (const ColumnSet& ucc : list_) {
      if (ucc.IsSubsetOf(set)) out.push_back(ucc);
    }
    return out;
  }

  // Table 2: candidate right-hand sides for a left-hand side split off
  // `connector`.
  ColumnSet Lookup(const ColumnSet& connector) const {
    ColumnSet result;
    for (const ColumnSet& ucc : SupersetsOf(connector)) {
      result = result.Union(ucc);
    }
    return result.Difference(connector);
  }

  const std::vector<ColumnSet>& All() const { return list_; }

 private:
  std::vector<ColumnSet> list_;
  SetTrie trie_;
  bool use_trie_;
};

// Verified FDs found so far: a grow-only map lhs → right-hand sides (every
// entry has been validated against the data) plus, per right-hand side, the
// antichain of minimal left-hand sides that forms the final answer.
class FdStore {
 public:
  // Records the verified FD lhs → rhs. Returns true if it is new knowledge:
  // no stored lhs' ⊆ lhs already determined rhs. Dominated FDs are not
  // recorded at all — they carry no connector information a stored subset
  // does not already carry.
  bool Add(const ColumnSet& lhs, int rhs) {
    MinimalSetCollection& collection = minimal_[rhs];
    if (collection.ContainsSubsetOf(lhs)) return false;
    collection.Insert(lhs);
    AddRaw(lhs, rhs);
    return true;
  }

  // True if a stored left-hand side within `lhs` already determines `rhs`
  // (the FD lhs → rhs is implied; no data check needed).
  bool Covers(const ColumnSet& lhs, int rhs) const {
    auto it = minimal_.find(rhs);
    return it != minimal_.end() && it->second.ContainsSubsetOf(lhs);
  }

  // All stored (lhs, rhs-set) pairs, including entries later superseded by
  // smaller left-hand sides (they remain valid FDs and useful connectors).
  const std::unordered_map<ColumnSet, ColumnSet, ColumnSetHash>& entries()
      const {
    return rhs_of_lhs_;
  }

  // Stored left-hand sides that are subsets of `set` (including `set`):
  // the connectors of Algorithm 2.
  std::vector<ColumnSet> LhsSubsetsOf(const ColumnSet& set) const {
    return lhs_trie_.CollectSubsetsOf(set);
  }

  // Right-hand sides stored for exactly `lhs` (empty set if none).
  ColumnSet RhsOf(const ColumnSet& lhs) const {
    auto it = rhs_of_lhs_.find(lhs);
    return it == rhs_of_lhs_.end() ? ColumnSet() : it->second;
  }

  std::vector<ColumnSet> MinimalLhsFor(int rhs) const {
    auto it = minimal_.find(rhs);
    return it == minimal_.end() ? std::vector<ColumnSet>()
                                : it->second.CollectAll();
  }

  // Replaces the minimal answer for `rhs` (used by exhaustive completion).
  void ReplaceMinimal(int rhs, const std::vector<ColumnSet>& lhss) {
    minimal_[rhs].Clear();
    for (const ColumnSet& lhs : lhss) {
      minimal_[rhs].Insert(lhs);
      AddRaw(lhs, rhs);
    }
  }

  std::vector<Fd> MinimalFds() const {
    std::vector<Fd> fds;
    for (const auto& [rhs, collection] : minimal_) {
      for (const ColumnSet& lhs : collection.CollectAll()) {
        fds.push_back(Fd{lhs, rhs});
      }
    }
    return fds;
  }

 private:
  void AddRaw(const ColumnSet& lhs, int rhs) {
    rhs_of_lhs_[lhs].Add(rhs);
    lhs_trie_.Insert(lhs);
  }

  std::unordered_map<ColumnSet, ColumnSet, ColumnSetHash> rhs_of_lhs_;
  SetTrie lhs_trie_;
  std::map<int, MinimalSetCollection> minimal_;
};

// Registry handles for MUDS' hot counters, resolved once per process. The
// per-run MudsStats fields stay the exact per-run record; these feed the
// process-wide registry the observability layer reports through.
struct MudsCounters {
  Counter* fd_checks;
  Counter* refines_all_batches;
  Counter* refines_all_candidates;
  Counter* rz_nodes_visited;
  Counter* rz_walk_steps;
  Counter* completion_nodes_visited;
  Counter* completion_walk_steps;
  Counter* shadowed_tasks;
  Counter* connector_lookups;
  Counter* parallel_tasks;

  static const MudsCounters& Get() {
    static const MudsCounters counters = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      MudsCounters c;
      c.fd_checks = registry.GetCounter("muds.fd_checks");
      c.refines_all_batches = registry.GetCounter("muds.refines_all.batches");
      c.refines_all_candidates =
          registry.GetCounter("muds.refines_all.candidates");
      c.rz_nodes_visited = registry.GetCounter("muds.rz.nodes_visited");
      c.rz_walk_steps = registry.GetCounter("muds.rz.walk_steps");
      c.completion_nodes_visited =
          registry.GetCounter("muds.completion.nodes_visited");
      c.completion_walk_steps =
          registry.GetCounter("muds.completion.walk_steps");
      c.shadowed_tasks = registry.GetCounter("muds.shadowed_tasks");
      c.connector_lookups = registry.GetCounter("muds.connector_lookups");
      c.parallel_tasks = registry.GetCounter("muds.parallel_tasks");
      return c;
    }();
    return counters;
  }
};

// Pre-rendered span args for a per-right-hand-side traversal task.
std::string RhsArgs(int rhs) {
  return "{\"rhs\":" + std::to_string(rhs) + "}";
}

struct PairHash {
  size_t operator()(const std::pair<ColumnSet, ColumnSet>& p) const {
    return p.first.Hash() * 1000003 + p.second.Hash();
  }
};

// Task buckets keyed by (context, lhs) and processed by descending lhs
// size, merging right-hand sides of tasks that meet at the same node. This
// implements the task queues of Algorithms 1 and 4 without re-expanding a
// node once per path through the subset lattice.
class TaskLevels {
 public:
  using Key = std::pair<ColumnSet, ColumnSet>;  // (context, lhs)

  void Add(const ColumnSet& context, const ColumnSet& lhs,
           const ColumnSet& rhs) {
    const int size = lhs.Count();
    if (size >= static_cast<int>(levels_.size())) {
      levels_.resize(static_cast<size_t>(size) + 1);
    }
    auto& bucket = levels_[static_cast<size_t>(size)];
    auto [it, inserted] = bucket.emplace(Key{context, lhs}, rhs);
    if (!inserted) it->second = it->second.Union(rhs);
  }

  int MaxSize() const { return static_cast<int>(levels_.size()) - 1; }

  // Tasks of the given lhs size (may be appended to while smaller levels
  // are still pending).
  const std::unordered_map<Key, ColumnSet, PairHash>& Level(int size) const {
    static const std::unordered_map<Key, ColumnSet, PairHash> kEmpty;
    return size < static_cast<int>(levels_.size())
               ? levels_[static_cast<size_t>(size)]
               : kEmpty;
  }

 private:
  std::vector<std::unordered_map<Key, ColumnSet, PairHash>> levels_;
};

class MudsRunner {
 public:
  MudsRunner(const Relation& relation, const MudsOptions& options)
      : relation_(relation), options_(options) {}

  MudsResult Run();

 private:
  // Phase implementations; see the section references on each.
  void RunSpider();                 // §2.1, shared load phase.
  void RunDucc();                   // §2.2.
  void MinimizeFdsFromUccs();       // §5.1, Algorithm 1.
  void CalculateRz();               // §5.2.
  void DiscoverShadowedFds();       // §5.3, Algorithms 2-4.
  void ExhaustiveCompletion();      // Optional certification pass.

  // Validates lhs → a for every candidate right-hand side a at once,
  // returning the valid subset. Results are memoized per left-hand side as
  // (checked, valid) bit sets: validity is immutable and the phases
  // revisit the same candidates from different directions, so repeat
  // queries cost one hash look-up plus bit algebra. (An antichain-based
  // inference cache was tried and lost: superset queries on dense tries
  // cost more than the PLI checks they saved.) Counters count actual data
  // validations.
  ColumnSet CheckFds(const ColumnSet& lhs, const ColumnSet& candidates,
                     int64_t* counter) {
    RhsKnowledge& knowledge = check_memo_[lhs];
    ColumnSet unchecked = candidates.Difference(knowledge.checked);
    // Sampling-first: one batched evidence probe refutes every recorded
    // non-FD with this left-hand side at once — those candidates never
    // reach the PLI. Refuted entries are definite non-FDs, so recording
    // them as checked-and-invalid keeps the memo (and the negative
    // knowledge later harvested by the exhaustive completion) exact.
    if (!unchecked.Empty() && evidence_) {
      const ColumnSet refuted =
          evidence_->RefutedRhs(lhs).Intersect(unchecked);
      knowledge.checked = knowledge.checked.Union(refuted);
      unchecked = unchecked.Difference(refuted);
    }
    if (!unchecked.Empty()) {
      const std::shared_ptr<const Pli> pli = cache_->Get(lhs);
      // Batched refinement: one probe-table pass validates every unchecked
      // right-hand side at once instead of one cluster walk per candidate.
      batch_columns_.clear();
      batch_indices_.clear();
      for (int a = unchecked.First(); a >= 0;
           a = unchecked.NextAtLeast(a + 1)) {
        batch_columns_.push_back(&relation_.GetColumn(a));
        batch_indices_.push_back(a);
      }
      *counter += static_cast<int64_t>(batch_indices_.size());
      const MudsCounters& counters = MudsCounters::Get();
      counters.fd_checks->Add(static_cast<int64_t>(batch_indices_.size()));
      counters.refines_all_batches->Increment();
      counters.refines_all_candidates->Add(
          static_cast<int64_t>(batch_indices_.size()));
      pli->RefinesAll(batch_columns_, &batch_valid_);
      for (size_t i = 0; i < batch_indices_.size(); ++i) {
        if (batch_valid_[i]) {
          knowledge.valid.Add(batch_indices_[i]);
        } else if (evidence_) {
          // Adaptive growth: the sampler missed this violation; feed a
          // violating pair back so sibling candidates get refuted free.
          evidence_->FeedBackFdViolation(
              *pli, relation_.GetColumn(batch_indices_[i]));
        }
      }
      knowledge.checked = knowledge.checked.Union(unchecked);
    }
    return candidates.Intersect(knowledge.valid);
  }

  bool CheckFd(const ColumnSet& lhs, int rhs, int64_t* counter) {
    return !CheckFds(lhs, ColumnSet::Single(rhs), counter).Empty();
  }

  // §4.1: right-hand sides that can never form an FD with `lhs` because
  // both sides would lie inside one minimal UCC (rule 1). Memoized: the
  // same left-hand sides recur across the tasks of many minimal UCCs.
  ColumnSet ImpossibleColumns(const ColumnSet& lhs) {
    auto it = impossible_memo_.find(lhs);
    if (it != impossible_memo_.end()) return it->second;
    ColumnSet impossible = lhs;
    for (const ColumnSet& ucc : ucc_store_->SupersetsOf(lhs)) {
      impossible = impossible.Union(ucc);
    }
    impossible_memo_.emplace(lhs, impossible);
    return impossible;
  }

  // Memoized connector look-up (§5.1, Table 2).
  ColumnSet LookupConnector(const ColumnSet& connector) {
    ++result_.stats.connector_lookups;
    MudsCounters::Get().connector_lookups->Increment();
    auto it = connector_memo_.find(connector);
    if (it != connector_memo_.end()) return it->second;
    const ColumnSet result = ucc_store_->Lookup(connector);
    connector_memo_.emplace(connector, result);
    return result;
  }

  // Per left-hand side: which right-hand sides were validated and which of
  // those held.
  struct RhsKnowledge {
    ColumnSet checked;
    ColumnSet valid;
  };

  // Validation state owned by one parallel traversal task. Workers never
  // touch the shared `check_memo_` (writes would race); they memoize into
  // their own map and the results are merged after the pool drains.
  struct TaskCheckState {
    std::unordered_map<ColumnSet, RhsKnowledge, ColumnSetHash> memo;
    int64_t checks = 0;
  };

  // Thread-safe FD check for the parallel phases: consults the shared memo
  // read-only (no other thread mutates it while a parallel phase runs),
  // then the task-local memo, and only then validates against the data
  // through the (thread-safe) PliCache. Validity is a property of the data,
  // so racing tasks that both validate the same pair agree on the answer —
  // only the check counter can differ across schedules.
  bool CheckFdParallel(const ColumnSet& lhs, int rhs, TaskCheckState* state) {
    auto shared = check_memo_.find(lhs);
    if (shared != check_memo_.end() && shared->second.checked.Contains(rhs)) {
      return shared->second.valid.Contains(rhs);
    }
    RhsKnowledge& local = state->memo[lhs];
    if (local.checked.Contains(rhs)) return local.valid.Contains(rhs);
    // Sampling-first: probe the (thread-safe) evidence store before
    // touching the PLI. A hit is a definite non-FD.
    if (evidence_ && evidence_->RefutesFd(lhs, rhs)) {
      local.checked.Add(rhs);
      return false;
    }
    ++state->checks;
    MudsCounters::Get().fd_checks->Increment();
    const std::shared_ptr<const Pli> pli = cache_->Get(lhs);
    const bool holds = pli->Refines(relation_.GetColumn(rhs));
    if (!holds && evidence_) {
      evidence_->FeedBackFdViolation(*pli, relation_.GetColumn(rhs));
    }
    local.checked.Add(rhs);
    if (holds) local.valid.Add(rhs);
    return holds;
  }

  // Folds the task-local validation knowledge back into the shared memo
  // (so later sequential phases keep benefiting) and the check counter.
  void MergeCheckStates(std::vector<TaskCheckState>* states,
                        int64_t* counter) {
    for (TaskCheckState& state : *states) {
      *counter += state.checks;
      for (auto& [lhs, local] : state.memo) {
        RhsKnowledge& knowledge = check_memo_[lhs];
        knowledge.checked = knowledge.checked.Union(local.checked);
        knowledge.valid = knowledge.valid.Union(local.valid);
      }
    }
  }

  // Algorithm 3: maximal subsets of `lhs` that contain no minimal UCC.
  std::vector<ColumnSet> RemoveUccs(const ColumnSet& lhs);

  // Algorithm 4 on merged task levels. Returns true if new minimal FDs
  // were recorded.
  bool MinimizeTasks(TaskLevels* tasks, int64_t* check_counter);

  const Relation& relation_;
  MudsOptions options_;
  MudsResult result_;

  std::optional<PliCache> cache_;
  // Sampled row-pair evidence (engaged only with options_.sampling on and
  // more than one row). Probes take a shared lock; feedback inserts take a
  // unique lock, so the parallel phases can consult it concurrently.
  std::optional<EvidenceStore> evidence_;
  std::vector<ColumnSet> uccs_;
  std::optional<UccStore> ucc_store_;
  FdStore fd_store_;
  ColumnSet active_;
  ColumnSet z_;  // Union of all minimal UCCs.
  std::unordered_map<ColumnSet, std::vector<ColumnSet>, ColumnSetHash>
      remove_uccs_memo_;
  std::unordered_map<ColumnSet, ColumnSet, ColumnSetHash> impossible_memo_;
  std::unordered_map<ColumnSet, ColumnSet, ColumnSetHash> connector_memo_;

  // Reduced lhs → right-hand sides already proposed to the shadowed
  // minimizer.
  std::unordered_map<ColumnSet, ColumnSet, ColumnSetHash>
      dispatched_shadowed_;
  // newLhs → right-hand sides already expanded in earlier rounds.
  std::unordered_map<ColumnSet, ColumnSet, ColumnSetHash> processed_shadowed_;
  std::unordered_map<ColumnSet, RhsKnowledge, ColumnSetHash> check_memo_;
  std::optional<ThreadPool> pool_;
  // Scratch for the batched CheckFds (sequential phases only; the parallel
  // phases go through CheckFdParallel and never touch these).
  std::vector<const Column*> batch_columns_;
  std::vector<int> batch_indices_;
  std::vector<uint8_t> batch_valid_;
};

MudsResult MudsRunner::Run() {
  pool_.emplace(options_.num_threads);
  result_.stats.num_threads_used = pool_->NumThreads();
  RunSpider();
  // Eager registration: the sampling.* registry counters must exist (at
  // zero) even on runs with sampling disabled, so observability tooling
  // can rely on their presence.
  EvidenceStore::RegisterMetrics();
  if (options_.sampling.enabled() && relation_.NumRows() > 1) {
    MUDS_TRACE_SPAN(&result_.timings, "evidenceBuild");
    evidence_.emplace(relation_);
    // The single-column PLIs are pinned in the cache; keep the shared_ptrs
    // alive for the duration of the sampling pass.
    std::vector<std::shared_ptr<const Pli>> pinned;
    std::vector<std::pair<int, const Pli*>> column_plis;
    const ColumnSet active = relation_.ActiveColumns();
    for (int c = active.First(); c >= 0; c = active.NextAtLeast(c + 1)) {
      pinned.push_back(cache_->Get(ColumnSet::Single(c)));
      column_plis.emplace_back(c, pinned.back().get());
    }
    SampleEvidence(options_.sampling, column_plis, &*evidence_);
  }
  RunDucc();

  if (relation_.NumRows() > 1) {
    // Pre-register the phases so the Figure 8 breakdown always lists them
    // in the paper's order, even when a phase ends up with no work.
    for (const char* phase :
         {"minimizeFDs", "calculateRZ", "generateShadowedTasks",
          "minimizeShadowedTasks"}) {
      result_.timings.Add(phase, 0);
    }
    {
      MUDS_TRACE_SPAN(&result_.timings, "minimizeFDs");
      MinimizeFdsFromUccs();
    }
    {
      MUDS_TRACE_SPAN(&result_.timings, "calculateRZ");
      CalculateRz();
    }
    if (options_.run_paper_shadowed_phase ||
        options_.completion == MudsOptions::Completion::kFixpoint) {
      DiscoverShadowedFds();
    }
    if (options_.completion == MudsOptions::Completion::kExhaustive) {
      MUDS_TRACE_SPAN(&result_.timings, "exhaustiveCompletion");
      ExhaustiveCompletion();
    }
  }

  result_.fds = ConstantColumnFds(relation_);
  for (const Fd& fd : fd_store_.MinimalFds()) result_.fds.push_back(fd);
  Canonicalize(&result_.fds);
  result_.uccs = uccs_;
  Canonicalize(&result_.uccs);
  result_.stats.pli_intersects = cache_->NumIntersects();
  const PliCache::Stats cache_stats = cache_->GetStats();
  result_.stats.pli_cache_hits = cache_stats.hits;
  result_.stats.pli_cache_misses = cache_stats.misses;
  result_.stats.pli_cache_evictions = cache_stats.evictions;
  result_.stats.pli_cache_bytes = cache_stats.bytes_cached;
  result_.stats.pli_cache_pinned_bytes = cache_stats.pinned_bytes;
  result_.stats.pli_cache_spill_writes = cache_stats.spill_writes;
  result_.stats.pli_cache_spill_reloads = cache_stats.spill_reloads;
  result_.stats.pli_cache_spill_bytes = cache_stats.spill_bytes;
  if (evidence_) {
    const EvidenceStore::Stats evidence_stats = evidence_->GetStats();
    result_.stats.sampling_pairs = evidence_stats.pairs;
    result_.stats.sampling_refuted = evidence_stats.refuted;
    result_.stats.sampling_fed_back = evidence_stats.fed_back;
    result_.stats.sampling_probe_ns = evidence_stats.probe_ns;
  }
  return result_;
}

void MudsRunner::RunSpider() {
  MUDS_TRACE_SPAN(&result_.timings, "SPIDER");
  // The paper builds the PLIs in the same pass that feeds SPIDER (§5);
  // constructing the cache here mirrors that shared scan. SPIDER and the
  // PLI build read disjoint state, so with a parallel pool SPIDER runs on a
  // worker while the caller drives the per-column PLI construction.
  // With a spill directory configured, SPIDER merges disk-resident runs
  // instead of in-memory dictionaries (same INDs, bounded memory).
  const auto discover_inds = [this] {
    if (options_.spill.enabled()) {
      SpiderExternalOptions external;
      external.spill = options_.spill;
      return Spider::DiscoverExternal(relation_, external);
    }
    return Spider::Discover(relation_);
  };
  if (pool_->NumThreads() > 1) {
    std::future<std::vector<Ind>> inds = pool_->Submit(discover_inds);
    cache_.emplace(relation_, options_.pli_budget_bytes, &*pool_,
                   options_.pli_impl, options_.spill);
    result_.inds = inds.get();
  } else {
    result_.inds = discover_inds();
    cache_.emplace(relation_, options_.pli_budget_bytes, nullptr,
                   options_.pli_impl, options_.spill);
  }
  active_ = relation_.ActiveColumns();
}

void MudsRunner::RunDucc() {
  MUDS_TRACE_SPAN(&result_.timings, "DUCC");
  Ducc::Options ducc_options;
  ducc_options.seed = options_.seed;
  uccs_ = Ducc::Discover(relation_, &*cache_, ducc_options,
                         &result_.stats.ducc,
                         evidence_ ? &*evidence_ : nullptr);
  ucc_store_.emplace(uccs_, options_.use_prefix_tree);
  z_ = ColumnSet();
  for (const ColumnSet& ucc : uccs_) z_ = z_.Union(ucc);
}

void MudsRunner::MinimizeFdsFromUccs() {
  TaskLevels tasks;
  for (const ColumnSet& ucc : uccs_) {
    const ColumnSet rhs = z_.Difference(ucc);
    if (ucc.Empty()) continue;
    tasks.Add(ucc, ucc, rhs);
  }

  for (int size = tasks.MaxSize(); size >= 1; --size) {
    for (const auto& [key, rhs_set] : tasks.Level(size)) {
      const ColumnSet& m_ucc = key.first;
      const ColumnSet& lhs = key.second;
      ColumnSet current_rhs = rhs_set;
      for (int c = lhs.First(); c >= 0; c = lhs.NextAtLeast(c + 1)) {
        const ColumnSet subset = lhs.Without(c);
        if (subset.Empty()) continue;
        const ColumnSet connector = m_ucc.Difference(subset);
        ColumnSet potential = LookupConnector(connector);
        potential = potential.Difference(ImpossibleColumns(subset));
        const ColumnSet valid_rhs =
            CheckFds(subset, potential, &result_.stats.fd_checks_minimize);
        current_rhs = current_rhs.Difference(valid_rhs);
        if (!valid_rhs.Empty()) tasks.Add(m_ucc, subset, valid_rhs);
      }
      for (int a = current_rhs.First(); a >= 0;
           a = current_rhs.NextAtLeast(a + 1)) {
        fd_store_.Add(lhs, a);
      }
    }
  }
}

void MudsRunner::CalculateRz() {
  const ColumnSet rz = active_.Difference(z_);
  const MudsCounters& counters = MudsCounters::Get();
  if (pool_->NumThreads() <= 1) {
    for (int a = rz.First(); a >= 0; a = rz.NextAtLeast(a + 1)) {
      MUDS_TRACE_SPAN("rzTraversal", RhsArgs(a));
      LatticeTraversal::Options traversal_options;
      traversal_options.seed =
          options_.seed * 7919 + static_cast<uint64_t>(a);
      // Key pruning: every minimal UCC determines `a` (a ∉ Z, so no UCC
      // contains it).
      traversal_options.known_positive = uccs_;
      LatticeTraversal traversal(
          active_.Without(a),
          [this, a](const ColumnSet& lhs) {
            return CheckFd(lhs, a, &result_.stats.fd_checks_rz);
          },
          traversal_options);
      for (const ColumnSet& lhs : traversal.Run()) fd_store_.Add(lhs, a);
      counters.rz_nodes_visited->Add(traversal.stats().predicate_calls);
      counters.rz_walk_steps->Add(traversal.stats().walk_steps);
    }
    return;
  }

  // Each right-hand side outside Z spans its own sub-lattice, seeded
  // independently — the traversals share nothing but the (thread-safe)
  // PliCache and the read-only check memo, so they run concurrently and
  // their results merge in right-hand-side order, making the discovered FD
  // set independent of scheduling.
  const std::vector<int> targets = rz.ToIndices();
  std::vector<std::vector<ColumnSet>> found(targets.size());
  std::vector<TaskCheckState> states(targets.size());
  result_.stats.parallel_tasks += static_cast<int64_t>(targets.size());
  counters.parallel_tasks->Add(static_cast<int64_t>(targets.size()));
  pool_->ParallelFor(0, static_cast<int64_t>(targets.size()), [&](int64_t i) {
    const int a = targets[static_cast<size_t>(i)];
    MUDS_TRACE_SPAN("rzTraversal", RhsArgs(a));
    LatticeTraversal::Options traversal_options;
    traversal_options.seed = options_.seed * 7919 + static_cast<uint64_t>(a);
    traversal_options.known_positive = uccs_;
    TaskCheckState* state = &states[static_cast<size_t>(i)];
    LatticeTraversal traversal(
        active_.Without(a),
        [this, a, state](const ColumnSet& lhs) {
          return CheckFdParallel(lhs, a, state);
        },
        traversal_options);
    found[static_cast<size_t>(i)] = traversal.Run();
    counters.rz_nodes_visited->Add(traversal.stats().predicate_calls);
    counters.rz_walk_steps->Add(traversal.stats().walk_steps);
  });
  for (size_t i = 0; i < targets.size(); ++i) {
    for (const ColumnSet& lhs : found[i]) fd_store_.Add(lhs, targets[i]);
  }
  MergeCheckStates(&states, &result_.stats.fd_checks_rz);
}

std::vector<ColumnSet> MudsRunner::RemoveUccs(const ColumnSet& lhs) {
  auto memo = remove_uccs_memo_.find(lhs);
  if (memo != remove_uccs_memo_.end()) return memo->second;

  const std::vector<ColumnSet> contained = ucc_store_->SubsetsOf(lhs);
  std::vector<ColumnSet> results;
  if (contained.empty()) {
    results = {lhs};
  } else if (options_.completion == MudsOptions::Completion::kExhaustive &&
             contained.size() > 32) {
    // Budget guard: enumerating the UCC-free reductions of a left-hand
    // side that swallows dozens of minimal UCCs is itself exponential.
    // Under the (default) exhaustive completion the shadowed phase is only
    // an accelerator, so skipping the reduction is sound — the
    // certification sweep will find whatever this would have proposed.
    // The paper-faithful kFixpoint mode never truncates.
  } else {
    // Algorithm 3 asks for the UCC-free reductions of `lhs`: subsets that
    // break every contained minimal UCC by removing one column per UCC.
    // The removal sets are exactly the minimal hitting sets of the
    // contained-UCC family, so the maximal UCC-free reductions are their
    // complements. (The naive one-column-per-UCC branch enumeration of the
    // pseudo-code revisits exponentially many duplicate states when a lhs
    // contains many UCCs.)
    for (const ColumnSet& hit :
         MinimalHittingSets(contained, ColumnSet::kMaxColumns)) {
      results.push_back(lhs.Difference(hit));
    }
  }
  remove_uccs_memo_.emplace(lhs, results);
  return results;
}

bool MudsRunner::MinimizeTasks(TaskLevels* tasks, int64_t* check_counter) {
  bool found_new = false;
  const ColumnSet no_context;  // Algorithm 4 tasks carry no mUCC context.
  for (int size = tasks->MaxSize(); size >= 1; --size) {
    for (const auto& [key, rhs_set] : tasks->Level(size)) {
      const ColumnSet& lhs = key.second;
      // Right-hand sides already determined by a stored subset of this lhs
      // cannot yield new minimal FDs here.
      ColumnSet pending = rhs_set;
      if (options_.shadowed_knowledge_pruning) {
        for (int a = pending.First(); a >= 0;
             a = pending.NextAtLeast(a + 1)) {
          if (fd_store_.Covers(lhs, a)) pending.Remove(a);
        }
        if (pending.Empty()) continue;
      }

      ColumnSet current_rhs = pending;
      for (int c = lhs.First(); c >= 0; c = lhs.NextAtLeast(c + 1)) {
        const ColumnSet subset = lhs.Without(c);
        if (subset.Empty()) continue;
        ColumnSet candidates = pending.Difference(subset);
        if (options_.shadowed_knowledge_pruning) {
          for (int a = candidates.First(); a >= 0;
               a = candidates.NextAtLeast(a + 1)) {
            if (fd_store_.Covers(subset, a)) {
              // Inferred from stored knowledge: subset → a holds, so
              // lhs → a is not minimal; the stored FD already covers the
              // subtree.
              current_rhs.Remove(a);
              candidates.Remove(a);
            }
          }
        }
        const ColumnSet valid_rhs = CheckFds(subset, candidates, check_counter);
        current_rhs = current_rhs.Difference(valid_rhs);
        if (!valid_rhs.Empty()) tasks->Add(no_context, subset, valid_rhs);
      }
      for (int a = current_rhs.First(); a >= 0;
           a = current_rhs.NextAtLeast(a + 1)) {
        if (fd_store_.Add(lhs, a)) found_new = true;
      }
    }
  }
  return found_new;
}

void MudsRunner::DiscoverShadowedFds() {
  for (;;) {
    ++result_.stats.shadowed_rounds;
    TaskLevels tasks;
    bool generated = false;
    {
      MUDS_TRACE_SPAN(&result_.timings, "generateShadowedTasks");
      // Snapshot: Algorithm 2 iterates the FDs discovered so far. Many
      // entries extend to the same shadowed left-hand side, so the
      // candidate right-hand sides are merged per distinct newLhs before
      // any reduction or validation work happens.
      std::unordered_map<ColumnSet, ColumnSet, ColumnSetHash> pending;
      for (const auto& [lhs, rhs_set] : fd_store_.entries()) {
        // Shadowed columns: right-hand sides of stored FDs whose left-hand
        // side (the connector) is a subset of this lhs — i.e. exactly the
        // columns the store's knowledge derives from subsets of lhs.
        ColumnSet shadowed;
        for (int a = active_.First(); a >= 0; a = active_.NextAtLeast(a + 1)) {
          if (!lhs.Contains(a) && fd_store_.Covers(lhs, a)) shadowed.Add(a);
        }
        if (shadowed.Empty()) continue;
        const ColumnSet new_lhs = lhs.Union(shadowed);
        pending[new_lhs] = pending[new_lhs].Union(rhs_set);
      }
      for (const auto& [new_lhs, merged_rhs] : pending) {
        // Only the right-hand sides not handled in an earlier round are
        // new work for this newLhs.
        ColumnSet& done = processed_shadowed_[new_lhs];
        const ColumnSet fresh_rhs = merged_rhs.Difference(done);
        if (fresh_rhs.Empty()) continue;
        done = done.Union(fresh_rhs);
        for (const ColumnSet& reduced : RemoveUccs(new_lhs)) {
          // Validate immediately (§6.4): only FDs that actually hold become
          // minimization tasks. Right-hand sides already determined by a
          // stored subset of the reduced lhs are skipped — re-minimizing
          // them can only rediscover known FDs.
          // Each (reduced, a) candidate is dispatched once per run —
          // validity is a property of the data, not of the entry that
          // proposed it.
          ColumnSet& dispatched = dispatched_shadowed_[reduced];
          ColumnSet candidates =
              fresh_rhs.Difference(reduced).Difference(dispatched);
          dispatched = dispatched.Union(candidates);
          if (options_.shadowed_knowledge_pruning) {
            for (int a = candidates.First(); a >= 0;
                 a = candidates.NextAtLeast(a + 1)) {
              if (fd_store_.Covers(reduced, a)) candidates.Remove(a);
            }
          }
          const ColumnSet valid = CheckFds(
              reduced, candidates, &result_.stats.fd_checks_shadowed);
          if (valid.Empty()) continue;
          tasks.Add(ColumnSet(), reduced, valid);
          ++result_.stats.shadowed_tasks;
          MudsCounters::Get().shadowed_tasks->Increment();
          generated = true;
        }
      }
    }
    if (!generated) break;
    bool found_new;
    {
      MUDS_TRACE_SPAN(&result_.timings, "minimizeShadowedTasks");
      found_new =
          MinimizeTasks(&tasks, &result_.stats.fd_checks_shadowed);
    }
    // Fixpoint iteration (DESIGN.md): new FDs can expose new shadowed
    // columns, so repeat until the store stops growing.
    if (!found_new) break;
  }
}

void MudsRunner::ExhaustiveCompletion() {
  // Everything the earlier phases validated — positively or negatively —
  // seeds the per-right-hand-side traversals, so they only explore what
  // phases 1-3 genuinely left open.
  std::map<int, std::vector<ColumnSet>> known_positive;
  std::map<int, std::vector<ColumnSet>> known_negative;
  for (const auto& [lhs, knowledge] : check_memo_) {
    for (int a = knowledge.checked.First(); a >= 0;
         a = knowledge.checked.NextAtLeast(a + 1)) {
      (knowledge.valid.Contains(a) ? known_positive
                                   : known_negative)[a]
          .push_back(lhs);
    }
  }

  const MudsCounters& counters = MudsCounters::Get();
  if (pool_->NumThreads() <= 1) {
    for (int a = z_.First(); a >= 0; a = z_.NextAtLeast(a + 1)) {
      MUDS_TRACE_SPAN("completionTraversal", RhsArgs(a));
      LatticeTraversal::Options traversal_options;
      traversal_options.seed =
          options_.seed * 104729 + static_cast<uint64_t>(a);
      traversal_options.known_positive = known_positive[a];
      traversal_options.known_negative = known_negative[a];
      for (const ColumnSet& lhs : fd_store_.MinimalLhsFor(a)) {
        traversal_options.known_positive.push_back(lhs);
      }
      // Key pruning: every minimal UCC not containing `a` determines it.
      for (const ColumnSet& ucc : uccs_) {
        if (!ucc.Contains(a)) traversal_options.known_positive.push_back(ucc);
      }
      LatticeTraversal traversal(
          active_.Without(a),
          [this, a](const ColumnSet& lhs) {
            return CheckFd(lhs, a, &result_.stats.fd_checks_shadowed);
          },
          traversal_options);
      fd_store_.ReplaceMinimal(a, traversal.Run());
      counters.completion_nodes_visited->Add(
          traversal.stats().predicate_calls);
      counters.completion_walk_steps->Add(traversal.stats().walk_steps);
    }
    return;
  }

  // Parallel path. The traversal for right-hand side `a` depends only on
  // the pre-phase knowledge snapshotted above (ReplaceMinimal for b ≠ a
  // never changes MinimalLhsFor(a)), so the per-RHS options are prepared
  // sequentially, the traversals run concurrently, and the store is
  // updated in right-hand-side order afterwards — same answer as the
  // sequential loop.
  const std::vector<int> targets = z_.ToIndices();
  std::vector<LatticeTraversal::Options> per_rhs_options(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    const int a = targets[i];
    LatticeTraversal::Options& traversal_options = per_rhs_options[i];
    traversal_options.seed =
        options_.seed * 104729 + static_cast<uint64_t>(a);
    traversal_options.known_positive = known_positive[a];
    traversal_options.known_negative = known_negative[a];
    for (const ColumnSet& lhs : fd_store_.MinimalLhsFor(a)) {
      traversal_options.known_positive.push_back(lhs);
    }
    for (const ColumnSet& ucc : uccs_) {
      if (!ucc.Contains(a)) traversal_options.known_positive.push_back(ucc);
    }
  }
  std::vector<std::vector<ColumnSet>> minimal(targets.size());
  std::vector<TaskCheckState> states(targets.size());
  result_.stats.parallel_tasks += static_cast<int64_t>(targets.size());
  counters.parallel_tasks->Add(static_cast<int64_t>(targets.size()));
  pool_->ParallelFor(0, static_cast<int64_t>(targets.size()), [&](int64_t i) {
    const int a = targets[static_cast<size_t>(i)];
    MUDS_TRACE_SPAN("completionTraversal", RhsArgs(a));
    TaskCheckState* state = &states[static_cast<size_t>(i)];
    LatticeTraversal traversal(
        active_.Without(a),
        [this, a, state](const ColumnSet& lhs) {
          return CheckFdParallel(lhs, a, state);
        },
        std::move(per_rhs_options[static_cast<size_t>(i)]));
    minimal[static_cast<size_t>(i)] = traversal.Run();
    counters.completion_nodes_visited->Add(
        traversal.stats().predicate_calls);
    counters.completion_walk_steps->Add(traversal.stats().walk_steps);
  });
  for (size_t i = 0; i < targets.size(); ++i) {
    fd_store_.ReplaceMinimal(targets[i], minimal[i]);
  }
  MergeCheckStates(&states, &result_.stats.fd_checks_shadowed);
}

}  // namespace

MudsResult Muds::Run(const Relation& relation, const MudsOptions& options) {
  return MudsRunner(relation, options).Run();
}

}  // namespace muds
