#ifndef MUDS_CORE_SEARCH_SPACE_H_
#define MUDS_CORE_SEARCH_SPACE_H_

#include <cstdint>

#include "common/check.h"

namespace muds {

/// §2.4's search-space arithmetic: the candidate counts that motivate the
/// holistic design (IND discovery is quadratic and can run "as a byproduct
/// in the starting phase"; UCCs and FDs dominate with exponential spaces).
/// All functions require 0 <= n <= 58 so the counts fit in int64_t.

/// Unary IND candidates in a relation with n attributes: n·(n-1).
inline int64_t NumUnaryIndCandidates(int n) {
  MUDS_CHECK(n >= 0 && n <= 58);
  return static_cast<int64_t>(n) * (n - 1 < 0 ? 0 : n - 1);
}

/// UCC candidates: all non-empty attribute sets, 2^n - 1.
inline int64_t NumUccCandidates(int n) {
  MUDS_CHECK(n >= 0 && n <= 58);
  return (int64_t{1} << n) - 1;
}

/// FD candidates: the lattice edges above level 1,
/// Σ_{k=1..n} C(n,k)·(n-k) = n·2^(n-1) - n (the full hypercube's n·2^(n-1)
/// edges minus the n edges leaving the empty set).
inline int64_t NumFdCandidates(int n) {
  MUDS_CHECK(n >= 0 && n <= 58);
  if (n == 0) return 0;
  return static_cast<int64_t>(n) * (int64_t{1} << (n - 1)) - n;
}

}  // namespace muds

#endif  // MUDS_CORE_SEARCH_SPACE_H_
