#include "core/report.h"

#include <cstdio>

#include "common/build_info.h"
#include "common/json.h"

namespace muds {

namespace {

std::string ColumnList(const ColumnSet& set,
                       const std::vector<std::string>& names) {
  std::string out = "[";
  bool first = true;
  for (int c = set.First(); c >= 0; c = set.NextAtLeast(c + 1)) {
    if (!first) out += ',';
    out += JsonQuote(names[static_cast<size_t>(c)]);
    first = false;
  }
  out += ']';
  return out;
}

void AppendMetricsSection(const ProfilingResult& result, std::string* out) {
  *out += "\nmetrics:\n";
  char line[256];
  for (const auto& [metric, value] : result.metrics) {
    std::snprintf(line, sizeof(line), "  %-32s %12lld\n", metric.c_str(),
                  static_cast<long long>(value));
    *out += line;
  }
}

}  // namespace

std::string JsonQuote(const std::string& value) { return json::Quote(value); }

std::string ProfilingResultToJson(const ProfilingResult& result) {
  const auto& names = result.column_names;
  std::string out = "{\n  \"algorithm\": ";
  out += JsonQuote(AlgorithmName(result.algorithm_used));
  const BuildInfo build = GetBuildInfo();
  out += ",\n  \"build\": {\"git\": " + JsonQuote(build.git) +
         ", \"compiler\": " + JsonQuote(build.compiler) +
         ", \"simd\": " + JsonQuote(build.simd) + "}";
  out += ",\n  \"columns\": [";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ',';
    out += JsonQuote(names[i]);
  }
  out += "],\n  \"duplicates_removed\": " +
         std::to_string(result.duplicates_removed);
  out += ",\n  \"inds\": [";
  for (size_t i = 0; i < result.inds.size(); ++i) {
    if (i > 0) out += ',';
    out += "\n    {\"dependent\": ";
    out += JsonQuote(names[static_cast<size_t>(result.inds[i].dependent)]);
    out += ", \"referenced\": ";
    out += JsonQuote(names[static_cast<size_t>(result.inds[i].referenced)]);
    out += "}";
  }
  out += "\n  ],\n  \"uccs\": [";
  for (size_t i = 0; i < result.uccs.size(); ++i) {
    if (i > 0) out += ',';
    out += "\n    " + ColumnList(result.uccs[i], names);
  }
  out += "\n  ],\n  \"fds\": [";
  for (size_t i = 0; i < result.fds.size(); ++i) {
    if (i > 0) out += ',';
    out += "\n    {\"lhs\": " + ColumnList(result.fds[i].lhs, names);
    out += ", \"rhs\": ";
    out += JsonQuote(names[static_cast<size_t>(result.fds[i].rhs)]);
    out += "}";
  }
  out += "\n  ],\n  \"counters\": {";
  bool first = true;
  for (const auto& [counter, value] : result.counters) {
    if (!first) out += ',';
    out += "\n    " + JsonQuote(counter) + ": " + std::to_string(value);
    first = false;
  }
  out += "\n  },\n  \"metrics\": {";
  first = true;
  for (const auto& [metric, value] : result.metrics) {
    if (!first) out += ',';
    out += "\n    " + JsonQuote(metric) + ": " + std::to_string(value);
    first = false;
  }
  out += "\n  },\n  \"timings_us\": {";
  first = true;
  for (const auto& [phase, micros] : result.timings.entries()) {
    if (!first) out += ',';
    out += "\n    " + JsonQuote(phase) + ": " + std::to_string(micros);
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

std::string ProfilingResultToText(const ProfilingResult& result,
                                  bool summary_only, bool show_metrics) {
  const auto& names = result.column_names;
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "algorithm: %s\n",
                AlgorithmName(result.algorithm_used));
  out += line;
  std::snprintf(line, sizeof(line),
                "columns:   %zu, duplicates removed: %lld\n", names.size(),
                static_cast<long long>(result.duplicates_removed));
  out += line;
  std::snprintf(line, sizeof(line),
                "found %zu INDs, %zu minimal UCCs, %zu minimal FDs in "
                "%.3fs\n",
                result.inds.size(), result.uccs.size(), result.fds.size(),
                result.TotalSeconds());
  out += line;
  if (summary_only) {
    if (show_metrics) AppendMetricsSection(result, &out);
    return out;
  }

  out += "\nunary inclusion dependencies:\n";
  for (const Ind& ind : result.inds) {
    out += "  " + ToString(ind, names) + "\n";
  }
  out += "\nminimal unique column combinations:\n";
  for (const ColumnSet& ucc : result.uccs) {
    out += "  " + ucc.ToString(names) + "\n";
  }
  out += "\nminimal functional dependencies:\n";
  for (const Fd& fd : result.fds) {
    out += "  " + ToString(fd, names) + "\n";
  }
  out += "\nphases:\n";
  for (const auto& [phase, micros] : result.timings.entries()) {
    std::snprintf(line, sizeof(line), "  %-24s %10.3f ms\n", phase.c_str(),
                  static_cast<double>(micros) / 1e3);
    out += line;
  }
  if (show_metrics) AppendMetricsSection(result, &out);
  return out;
}

}  // namespace muds
