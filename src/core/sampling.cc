#include "core/sampling.h"

#include "common/rng.h"
#include "core/evidence.h"

namespace muds {

void SampleEvidence(const SamplingConfig& config,
                    const std::vector<std::pair<int, const Pli*>>& column_plis,
                    EvidenceStore* store) {
  if (!config.enabled() || store == nullptr) return;

  // Columns without a stripped cluster (all-distinct columns) have no
  // agreeing pair to draw.
  std::vector<std::pair<int, const Pli*>> eligible;
  for (const auto& entry : column_plis) {
    if (entry.second->NumClusters() > 0) eligible.push_back(entry);
  }
  if (eligible.empty()) return;

  const int64_t n = static_cast<int64_t>(eligible.size());
  for (int64_t i = 0; i < n; ++i) {
    const auto& [column, pli] = eligible[static_cast<size_t>(i)];
    // Even split of the pair budget; the first `pairs % n` columns absorb
    // the remainder. Per-column generators make the drawn pairs a function
    // of (seed, column) alone, independent of which other columns exist.
    const int64_t share = config.pairs / n + (i < config.pairs % n ? 1 : 0);
    Rng rng(config.seed ^
            (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(column + 1)));
    const uint64_t num_clusters = static_cast<uint64_t>(pli->NumClusters());
    for (int64_t draw = 0; draw < share; ++draw) {
      const std::span<const RowId> cluster =
          pli->cluster(static_cast<int64_t>(rng.NextBelow(num_clusters)));
      // Two distinct positions; stripped clusters always have >= 2 rows.
      const uint64_t size = cluster.size();
      const uint64_t a = rng.NextBelow(size);
      uint64_t b = rng.NextBelow(size - 1);
      if (b >= a) ++b;
      store->AddPair(cluster[a], cluster[b], /*fed_back=*/false);
    }
  }
}

}  // namespace muds
