#ifndef MUDS_CORE_SAMPLING_H_
#define MUDS_CORE_SAMPLING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "pli/position_list_index.h"

namespace muds {

class EvidenceStore;

/// Configuration of the sampling-first pre-validator (--sample-pairs /
/// --sample-seed). Sampling is refutation-only, so the discovered
/// dependency sets are bit-identical at every setting; only runtime and
/// the sampling.* counters vary.
struct SamplingConfig {
  /// Total row-pair budget for the up-front sampler (0 = disabled; the
  /// evidence store, probes, and feedback loop are all off).
  int64_t pairs = 0;

  /// Seed of the deterministic pair sampler. Independent of the traversal
  /// seed so the two axes can be swept separately.
  uint64_t seed = 1;

  bool enabled() const { return pairs > 0; }
};

/// Deterministic, cluster-stratified row-pair sampling over single-column
/// PLIs: the pair budget is split evenly across the columns that have at
/// least one stripped cluster, and each draw picks a cluster uniformly,
/// then two distinct rows within it. Sampling inside a cluster guarantees
/// every drawn pair agrees on at least that column, so its disagreement
/// set is a proper subset of the universe — the informative kind of
/// evidence (a pair agreeing nowhere refutes only single-column FDs that
/// a cheaper check already handles).
///
/// `column_plis` maps column index → that column's PLI (order defines the
/// deterministic column visit order; callers pass ascending indices).
/// Dedup happens inside the store, so over-sampling a small cluster space
/// costs draws, not memory.
void SampleEvidence(const SamplingConfig& config,
                    const std::vector<std::pair<int, const Pli*>>& column_plis,
                    EvidenceStore* store);

}  // namespace muds

#endif  // MUDS_CORE_SAMPLING_H_
