#include "core/evidence.h"

#include <chrono>

#include "common/check.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace muds {

namespace {

// Registry handles for the sampling.* counters, resolved once per process.
// The per-store Stats stay the exact per-run record; these feed the
// process-wide registry the observability layer reports through.
struct SamplingMetrics {
  Counter* pairs;
  Counter* refuted;
  Counter* fed_back;
  Counter* probe_ns;

  static const SamplingMetrics& Get() {
    static const SamplingMetrics metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      SamplingMetrics m;
      m.pairs = registry.GetCounter("sampling.pairs");
      m.refuted = registry.GetCounter("sampling.refuted");
      m.fed_back = registry.GetCounter("sampling.fed_back");
      m.probe_ns = registry.GetCounter("sampling.probe_ns");
      return m;
    }();
    return metrics;
  }
};

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// RAII probe timer: accumulates elapsed wall time into the store's
// probe_ns counter and the registry.
class ProbeTimer {
 public:
  explicit ProbeTimer(std::atomic<int64_t>* sink)
      : sink_(sink), start_(NowNs()) {}
  ~ProbeTimer() {
    const int64_t elapsed = NowNs() - start_;
    sink_->fetch_add(elapsed, std::memory_order_relaxed);
    SamplingMetrics::Get().probe_ns->Add(elapsed);
  }

 private:
  std::atomic<int64_t>* sink_;
  int64_t start_;
};

}  // namespace

EvidenceStore::EvidenceStore(const Relation& relation)
    : relation_(&relation) {
  RegisterMetrics();
  for (int c = 0; c < relation.NumColumns(); ++c) universe_.Add(c);
}

void EvidenceStore::RegisterMetrics() { SamplingMetrics::Get(); }

bool EvidenceStore::AddPair(RowId r1, RowId r2, bool fed_back) {
  ColumnSet disagreement;
  for (int c = 0; c < relation_->NumColumns(); ++c) {
    if (relation_->Code(r1, c) != relation_->Code(r2, c)) disagreement.Add(c);
  }
  // Identical rows refute nothing (and cannot occur on deduplicated input).
  if (disagreement.Empty()) return false;
  pairs_.fetch_add(1, std::memory_order_relaxed);
  SamplingMetrics::Get().pairs->Increment();
  if (fed_back) {
    fed_back_.fetch_add(1, std::memory_order_relaxed);
    SamplingMetrics::Get().fed_back->Increment();
  }
  std::unique_lock lock(mutex_);
  // Keep the cover subset-minimal (the MinimalSetCollection discipline):
  // a dominated set D ⊇ D' refutes a strict subset of the UCCs D' refutes,
  // so dropping it only costs a few FD refutations (rhs ∈ D \ D') while
  // keeping every probe a walk over a small antichain instead of one over
  // every sampled disagreement set — without this, high-cardinality
  // relations push thousands of near-universe sets into the trie and the
  // probes cost more than the PLI work they save. Losing refutations is
  // always safe (the candidate just proceeds to full validation).
  if (negative_cover_.ContainsSubsetOf(disagreement)) return false;
  for (const ColumnSet& dominated :
       negative_cover_.CollectSupersetsOf(disagreement)) {
    negative_cover_.Erase(dominated);
  }
  return negative_cover_.Insert(disagreement);
}

bool EvidenceStore::RefutesUcc(const ColumnSet& columns) const {
  MUDS_TRACE_SPAN("evidenceProbe");
  ProbeTimer timer(&probe_ns_);
  bool refuted;
  {
    std::shared_lock lock(mutex_);
    refuted = negative_cover_.ContainsSubsetOf(universe_.Difference(columns));
  }
  if (refuted) {
    refuted_.fetch_add(1, std::memory_order_relaxed);
    SamplingMetrics::Get().refuted->Increment();
  }
  return refuted;
}

bool EvidenceStore::RefutesFd(const ColumnSet& lhs, int rhs) const {
  MUDS_TRACE_SPAN("evidenceProbe");
  ProbeTimer timer(&probe_ns_);
  bool refuted;
  {
    std::shared_lock lock(mutex_);
    refuted = negative_cover_.ContainsSubsetOfWith(universe_.Difference(lhs),
                                                   rhs);
  }
  if (refuted) {
    refuted_.fetch_add(1, std::memory_order_relaxed);
    SamplingMetrics::Get().refuted->Increment();
  }
  return refuted;
}

ColumnSet EvidenceStore::RefutedRhs(const ColumnSet& lhs) const {
  MUDS_TRACE_SPAN("evidenceProbe");
  ProbeTimer timer(&probe_ns_);
  ColumnSet refuted;
  {
    std::shared_lock lock(mutex_);
    refuted = negative_cover_.UnionOfSubsetsOf(universe_.Difference(lhs));
  }
  if (!refuted.Empty()) {
    refuted_.fetch_add(refuted.Count(), std::memory_order_relaxed);
    SamplingMetrics::Get().refuted->Add(refuted.Count());
  }
  return refuted;
}

void EvidenceStore::FeedBackUccViolation(const Pli& pli) {
  MUDS_DCHECK(!pli.IsUnique());
  const std::span<const RowId> cluster = pli.cluster(0);
  AddPair(cluster[0], cluster[1], /*fed_back=*/true);
}

void EvidenceStore::FeedBackFdViolation(const Pli& lhs_pli,
                                        const Column& rhs) {
  // The refinement check failed, so some cluster holds two rows with
  // different rhs codes; take the first such pair.
  for (int64_t i = 0; i < lhs_pli.NumClusters(); ++i) {
    const std::span<const RowId> cluster = lhs_pli.cluster(i);
    const int32_t first = rhs.codes[static_cast<size_t>(cluster[0])];
    for (size_t j = 1; j < cluster.size(); ++j) {
      if (rhs.codes[static_cast<size_t>(cluster[j])] != first) {
        AddPair(cluster[0], cluster[j], /*fed_back=*/true);
        return;
      }
    }
  }
  MUDS_DCHECK(false);  // Caller promised a violation exists.
}

EvidenceStore::Stats EvidenceStore::GetStats() const {
  Stats stats;
  stats.pairs = pairs_.load(std::memory_order_relaxed);
  stats.refuted = refuted_.load(std::memory_order_relaxed);
  stats.fed_back = fed_back_.load(std::memory_order_relaxed);
  stats.probe_ns = probe_ns_.load(std::memory_order_relaxed);
  return stats;
}

size_t EvidenceStore::Size() const {
  std::shared_lock lock(mutex_);
  return negative_cover_.Size();
}

}  // namespace muds
