#include "core/holistic_fun.h"

#include "fd/fun.h"
#include "ind/spider.h"
#include "pli/pli_cache.h"
#include "ucc/ducc.h"

namespace muds {

HolisticResult HolisticFun::Run(const Relation& relation) {
  HolisticResult result;
  {
    ScopedPhaseTimer timer(&result.timings, "SPIDER");
    result.inds = Spider::Discover(relation);
  }
  {
    ScopedPhaseTimer timer(&result.timings, "FUN");
    FdDiscoveryResult fd_result = Fun::Discover(relation);
    result.fds = std::move(fd_result.fds);
    result.uccs = std::move(fd_result.uccs);
    result.fd_checks = fd_result.fd_checks;
    result.pli_intersects = fd_result.pli_intersects;
  }
  return result;
}

HolisticResult Baseline::Run(const Relation& relation, uint64_t seed) {
  HolisticResult result;
  {
    ScopedPhaseTimer timer(&result.timings, "SPIDER");
    result.inds = Spider::Discover(relation);
  }
  {
    ScopedPhaseTimer timer(&result.timings, "DUCC");
    // DUCC builds its own PLIs: no sharing in the baseline.
    PliCache cache(relation);
    Ducc::Options options;
    options.seed = seed;
    result.uccs = Ducc::Discover(relation, &cache, options);
    result.pli_intersects += cache.NumIntersects();
  }
  {
    ScopedPhaseTimer timer(&result.timings, "FUN");
    FdDiscoveryResult fd_result = Fun::Discover(relation);
    result.fds = std::move(fd_result.fds);
    result.fd_checks = fd_result.fd_checks;
    result.pli_intersects += fd_result.pli_intersects;
  }
  return result;
}

}  // namespace muds
