#include "core/holistic_fun.h"

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/evidence.h"
#include "fd/fun.h"
#include "ind/spider.h"
#include "pli/pli_cache.h"
#include "ucc/ducc.h"

namespace muds {

namespace {

std::vector<Ind> DiscoverInds(const Relation& relation,
                              const SpillConfig& spill) {
  if (spill.enabled()) {
    SpiderExternalOptions external;
    external.spill = spill;
    return Spider::DiscoverExternal(relation, external);
  }
  return Spider::Discover(relation);
}

void AccumulateSampling(const FdDiscoveryResult& fd_result,
                        HolisticResult* result) {
  result->sampling_pairs += fd_result.sampling_pairs;
  result->sampling_refuted += fd_result.sampling_refuted;
  result->sampling_fed_back += fd_result.sampling_fed_back;
  result->sampling_probe_ns += fd_result.sampling_probe_ns;
}

}  // namespace

HolisticResult HolisticFun::Run(const Relation& relation, int num_threads,
                                PliImpl pli_impl, const SpillConfig& spill,
                                const SamplingConfig& sampling) {
  HolisticResult result;
  ThreadPool pool(num_threads);
  result.num_threads_used = pool.NumThreads();
  if (pool.NumThreads() > 1) {
    // SPIDER (dictionary merge) and FUN (PLI lattice) read disjoint state:
    // overlap them. Each phase is charged its own task time, measured
    // inside the task and merged afterwards (PhaseTimings itself is not
    // thread-safe). Register SPIDER first to keep the paper's phase order.
    result.timings.Add("SPIDER", 0);
    std::future<std::pair<std::vector<Ind>, int64_t>> inds =
        pool.Submit([&relation, &spill] {
          // Trace-only span: PhaseTimings is not thread-safe, so the task
          // measures its own time and the caller merges it below.
          MUDS_TRACE_SPAN("SPIDER");
          Timer timer;
          std::vector<Ind> discovered = DiscoverInds(relation, spill);
          return std::make_pair(std::move(discovered),
                                timer.ElapsedMicros());
        });
    {
      MUDS_TRACE_SPAN(&result.timings, "FUN");
      FdDiscoveryResult fd_result = Fun::Discover(relation, pli_impl, sampling);
      result.fds = std::move(fd_result.fds);
      result.uccs = std::move(fd_result.uccs);
      result.fd_checks = fd_result.fd_checks;
      result.pli_intersects = fd_result.pli_intersects;
      AccumulateSampling(fd_result, &result);
    }
    auto [discovered, spider_micros] = inds.get();
    result.inds = std::move(discovered);
    result.timings.Add("SPIDER", spider_micros);
    return result;
  }
  {
    MUDS_TRACE_SPAN(&result.timings, "SPIDER");
    result.inds = DiscoverInds(relation, spill);
  }
  {
    MUDS_TRACE_SPAN(&result.timings, "FUN");
    FdDiscoveryResult fd_result = Fun::Discover(relation, pli_impl, sampling);
    result.fds = std::move(fd_result.fds);
    result.uccs = std::move(fd_result.uccs);
    result.fd_checks = fd_result.fd_checks;
    result.pli_intersects = fd_result.pli_intersects;
    AccumulateSampling(fd_result, &result);
  }
  return result;
}

HolisticResult Baseline::Run(const Relation& relation, uint64_t seed,
                             int num_threads, size_t pli_budget_bytes,
                             PliImpl pli_impl, const SpillConfig& spill,
                             const SamplingConfig& sampling) {
  HolisticResult result;
  ThreadPool pool(num_threads);
  result.num_threads_used = pool.NumThreads();
  {
    MUDS_TRACE_SPAN(&result.timings, "SPIDER");
    result.inds = DiscoverInds(relation, spill);
  }
  {
    MUDS_TRACE_SPAN(&result.timings, "DUCC");
    // DUCC builds its own PLIs: no sharing in the baseline. The same goes
    // for its evidence store — FUN samples its own below, matching the
    // baseline's no-sharing contract.
    PliCache cache(relation, pli_budget_bytes, &pool, pli_impl, spill);
    std::optional<EvidenceStore> evidence;
    if (sampling.enabled() && relation.NumRows() > 1) {
      MUDS_TRACE_SPAN("evidenceBuild");
      evidence.emplace(relation);
      std::vector<std::shared_ptr<const Pli>> pinned;
      std::vector<std::pair<int, const Pli*>> column_plis;
      const ColumnSet active = relation.ActiveColumns();
      for (int c = active.First(); c >= 0; c = active.NextAtLeast(c + 1)) {
        pinned.push_back(cache.Get(ColumnSet::Single(c)));
        column_plis.emplace_back(c, pinned.back().get());
      }
      SampleEvidence(sampling, column_plis, &*evidence);
    }
    Ducc::Options options;
    options.seed = seed;
    result.uccs = Ducc::Discover(relation, &cache, options, nullptr,
                                 evidence ? &*evidence : nullptr);
    result.pli_intersects += cache.NumIntersects();
    const PliCache::Stats stats = cache.GetStats();
    result.pli_cache_hits = stats.hits;
    result.pli_cache_misses = stats.misses;
    result.pli_cache_evictions = stats.evictions;
    result.pli_cache_spill_writes = stats.spill_writes;
    result.pli_cache_spill_reloads = stats.spill_reloads;
    if (evidence) {
      const EvidenceStore::Stats evidence_stats = evidence->GetStats();
      result.sampling_pairs += evidence_stats.pairs;
      result.sampling_refuted += evidence_stats.refuted;
      result.sampling_fed_back += evidence_stats.fed_back;
      result.sampling_probe_ns += evidence_stats.probe_ns;
    }
  }
  {
    MUDS_TRACE_SPAN(&result.timings, "FUN");
    FdDiscoveryResult fd_result = Fun::Discover(relation, pli_impl, sampling);
    result.fds = std::move(fd_result.fds);
    result.fd_checks = fd_result.fd_checks;
    result.pli_intersects += fd_result.pli_intersects;
    AccumulateSampling(fd_result, &result);
  }
  return result;
}

}  // namespace muds
