#include "core/incremental.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <map>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/trace.h"
#include "core/sampling.h"
#include "data/metadata.h"
#include "data/preprocess.h"
#include "ind/spider.h"
#include "setops/set_trie.h"

namespace muds {

namespace {

/// Registry handles for the `incremental.*` metrics, resolved once. The
/// constructor touch in IncrementalProfiler's ctor registers the full set,
/// so zero deltas still appear in metrics reports (the CI presence check
/// relies on that).
struct IncMetrics {
  Counter* batches;
  Counter* appended_rows;
  Counter* duplicates_dropped;
  Counter* revalidated;
  Counter* screened_out;
  Counter* broken;
  Counter* rediscovered;
  Counter* explored_nodes;
  Counter* evidence_hits;

  static const IncMetrics& Get() {
    static const IncMetrics metrics;
    return metrics;
  }

 private:
  IncMetrics() {
    MetricsRegistry& registry = MetricsRegistry::Global();
    batches = registry.GetCounter("incremental.batches");
    appended_rows = registry.GetCounter("incremental.appended_rows");
    duplicates_dropped = registry.GetCounter("incremental.duplicates_dropped");
    revalidated = registry.GetCounter("incremental.revalidated");
    screened_out = registry.GetCounter("incremental.screened_out");
    broken = registry.GetCounter("incremental.broken");
    rediscovered = registry.GetCounter("incremental.rediscovered");
    explored_nodes = registry.GetCounter("incremental.explored_nodes");
    evidence_hits = registry.GetCounter("incremental.evidence_hits");
  }
};

}  // namespace

uint64_t IncrementalProfiler::HashRowValues(const Relation& relation,
                                            RowId row) {
  // FNV-1a over each cell's length and bytes. Hashing the string values —
  // not the codes — keeps a row's hash stable across the dictionary remaps
  // AppendBatch performs, which is what lets the index built over earlier
  // rows screen later batches.
  uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](uint64_t byte) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  };
  for (int c = 0; c < relation.NumColumns(); ++c) {
    const std::string& value = relation.Value(row, c);
    uint64_t size = value.size();
    for (int i = 0; i < 8; ++i) mix((size >> (8 * i)) & 0xFF);
    for (char ch : value) mix(static_cast<unsigned char>(ch));
  }
  return h;
}

bool IncrementalProfiler::EqualRows(const Relation& a, RowId row_a,
                                    const Relation& b, RowId row_b) {
  for (int c = 0; c < a.NumColumns(); ++c) {
    if (a.Value(row_a, c) != b.Value(row_b, c)) return false;
  }
  return true;
}

IncrementalProfiler::IncrementalProfiler(const Relation& base,
                                         const ProfileOptions& options)
    : options_(options),
      before_(MetricsRegistry::Global().Snapshot()),
      pool_(std::make_unique<ThreadPool>(options.num_threads)) {
  IncMetrics::Get();

  {
    MUDS_TRACE_SPAN(&timings_, "dedup");
    DeduplicateResult deduped = DeduplicateRows(base);
    relation_.emplace(std::move(deduped.relation));
    duplicates_removed_ = deduped.duplicates_removed;
  }

  // The base profile runs the configured algorithm unchanged; incremental
  // maintenance only kicks in from the first Append. (ProfileRelation
  // re-deduplicates; the pass finds nothing and its time lands in the same
  // "dedup" phase entry.)
  ProfilingResult base_result = ProfileRelation(*relation_, options_);
  inds_ = std::move(base_result.inds);
  uccs_ = std::move(base_result.uccs);
  fds_ = std::move(base_result.fds);
  Canonicalize(&inds_);
  Canonicalize(&uccs_);
  Canonicalize(&fds_);
  for (const auto& entry : base_result.timings.entries()) {
    timings_.Add(entry.first, entry.second);
  }
  base_counters_ = std::move(base_result.counters);
  algorithm_used_ = base_result.algorithm_used;

  cache_ = std::make_unique<PliCache>(*relation_, options_.pli_budget_bytes,
                                      pool_.get(), options_.pli_impl,
                                      options_.spill);

  EvidenceStore::RegisterMetrics();
  // Built even for a trivial base relation: later batches still seed and
  // consult the store (sampling over empty PLIs just draws nothing).
  if (options_.sampling.enabled()) {
    MUDS_TRACE_SPAN(&timings_, "evidenceBuild");
    evidence_ = std::make_unique<EvidenceStore>(*relation_);
    std::vector<std::shared_ptr<const Pli>> pinned;
    std::vector<std::pair<int, const Pli*>> column_plis;
    const ColumnSet active = relation_->ActiveColumns();
    for (int c = active.First(); c >= 0; c = active.NextAtLeast(c + 1)) {
      pinned.push_back(cache_->Get(ColumnSet::Single(c)));
      column_plis.emplace_back(c, pinned.back().get());
    }
    SampleEvidence(options_.sampling, column_plis, evidence_.get());
  }

  row_index_.reserve(static_cast<size_t>(relation_->NumRows()));
  for (RowId row = 0; row < relation_->NumRows(); ++row) {
    row_index_[HashRowValues(*relation_, row)].push_back(row);
  }
}

Status IncrementalProfiler::Append(const Relation& batch) {
  if (batch.NumColumns() != relation_->NumColumns()) {
    return Status::InvalidArgument(
        "append batch has " + std::to_string(batch.NumColumns()) +
        " columns; relation has " + std::to_string(relation_->NumColumns()));
  }
  if (batch.ColumnNames() != relation_->ColumnNames()) {
    return Status::InvalidArgument(
        "append batch schema does not match the relation's column names");
  }

  MUDS_TRACE_SPAN(&timings_, "incrementalAppend");
  const IncMetrics& metrics = IncMetrics::Get();
  ++stats_.batches;
  metrics.batches->Increment();

  // Drop batch rows that duplicate an existing row (or an earlier row of
  // this batch): the profile of the deduplicated instance is what is
  // maintained, and duplicates do not change it (§3).
  std::vector<RowId> kept;
  kept.reserve(static_cast<size_t>(batch.NumRows()));
  std::unordered_map<uint64_t, std::vector<RowId>> pending;
  for (RowId row = 0; row < batch.NumRows(); ++row) {
    const uint64_t hash = HashRowValues(batch, row);
    bool duplicate = false;
    if (auto it = row_index_.find(hash); it != row_index_.end()) {
      for (RowId old : it->second) {
        if (EqualRows(*relation_, old, batch, row)) {
          duplicate = true;
          break;
        }
      }
    }
    if (!duplicate) {
      if (auto it = pending.find(hash); it != pending.end()) {
        for (RowId prior : it->second) {
          if (EqualRows(batch, prior, batch, row)) {
            duplicate = true;
            break;
          }
        }
      }
    }
    if (duplicate) continue;
    pending[hash].push_back(row);
    kept.push_back(row);
  }
  const int64_t dropped =
      static_cast<int64_t>(batch.NumRows()) - static_cast<int64_t>(kept.size());
  stats_.duplicates_dropped += dropped;
  metrics.duplicates_dropped->Add(dropped);
  duplicates_removed_ += dropped;
  if (kept.empty()) return Status::Ok();
  stats_.appended_rows += static_cast<int64_t>(kept.size());
  metrics.appended_rows->Add(static_cast<int64_t>(kept.size()));

  // SelectRows rebuilds minimal dictionaries — the AppendBatch precondition
  // that keeps phantom values out of the merged dictionaries (SPIDER reads
  // them as value lists).
  const Relation sub = batch.SelectRows(kept);
  const AppendDelta delta = relation_->AppendBatch(sub, pool_.get());
  for (RowId row = delta.old_num_rows; row < delta.new_num_rows; ++row) {
    row_index_[HashRowValues(*relation_, row)].push_back(row);
  }
  cache_->OnAppend(delta, pool_.get());

  {
    // Appends can break INDs and create them, so there is no monotone
    // repair; but SPIDER over the merged dictionaries is one multiway merge
    // with no lattice, so a full recomputation is the cheap option.
    MUDS_TRACE_SPAN(&timings_, "incrementalInds");
    if (options_.spill.enabled()) {
      SpiderExternalOptions external;
      external.spill = options_.spill;
      inds_ = Spider::DiscoverExternal(*relation_, external);
    } else {
      inds_ = Spider::Discover(*relation_);
    }
    Canonicalize(&inds_);
  }

  // Witness screen (Bläsius et al., arXiv 2103.13331): a UCC over S (or an
  // FD with left-hand side S) can only have broken if some appended row
  // collides with another row in every column of S — i.e. its value has
  // total count >= 2 in each of those columns. Collect each appended row's
  // collision column set; the distinct sets form a SetTrie, and
  // ContainsSupersetOf(S) answers "could S have broken?" in one traversal.
  SetTrie witness;
  {
    MUDS_TRACE_SPAN(&timings_, "incrementalDetect");
    const int num_columns = relation_->NumColumns();
    std::vector<std::vector<RowId>> suffix_count(
        static_cast<size_t>(num_columns));
    for (int c = 0; c < num_columns; ++c) {
      const Column& column = relation_->GetColumn(c);
      suffix_count[static_cast<size_t>(c)].assign(
          static_cast<size_t>(column.Cardinality()), 0);
      for (RowId row = delta.old_num_rows; row < delta.new_num_rows; ++row) {
        ++suffix_count[static_cast<size_t>(c)]
                      [static_cast<size_t>(column.codes[static_cast<size_t>(
                          row)])];
      }
    }
    // Evidence seeding: every collision column of an appended row names a
    // concrete partner row sharing the row's value there — a definite row
    // pair the store can record before any survivor is re-validated. (The
    // collision *set* itself is not pair evidence: each column's partner
    // is a different row.) The patched single-column PLIs keep their
    // clusters in code order, so the partner is one binary search away.
    std::vector<std::shared_ptr<const Pli>> column_plis;
    if (evidence_ != nullptr) {
      column_plis.reserve(static_cast<size_t>(num_columns));
      for (int c = 0; c < num_columns; ++c) {
        column_plis.push_back(cache_->Get(ColumnSet::Single(c)));
      }
    }
    const auto seed_pair = [&](RowId row, int c) {
      const Pli& pli = *column_plis[static_cast<size_t>(c)];
      const int32_t code = relation_->Code(row, c);
      int64_t lo = 0;
      int64_t hi = pli.NumClusters() - 1;
      while (lo <= hi) {
        const int64_t mid = lo + (hi - lo) / 2;
        const int32_t mid_code = relation_->Code(pli.cluster(mid)[0], c);
        if (mid_code < code) {
          lo = mid + 1;
        } else if (mid_code > code) {
          hi = mid - 1;
        } else {
          for (RowId partner : pli.cluster(mid)) {
            if (partner != row) {
              evidence_->AddPair(row, partner, false);
              return;
            }
          }
          return;
        }
      }
    };
    std::vector<int> collision_columns;
    for (RowId row = delta.old_num_rows; row < delta.new_num_rows; ++row) {
      collision_columns.clear();
      for (int c = 0; c < num_columns; ++c) {
        const auto code = static_cast<size_t>(relation_->Code(row, c));
        const RowId total =
            delta.columns[static_cast<size_t>(c)].old_count[code] +
            suffix_count[static_cast<size_t>(c)][code];
        if (total >= 2) collision_columns.push_back(c);
      }
      if (evidence_ != nullptr) {
        for (int c : collision_columns) seed_pair(row, c);
      }
      // The empty set is inserted too: it witnesses the empty-LHS/empty-UCC
      // dependencies, which any appended row can break.
      witness.Insert(ColumnSet::FromIndices(collision_columns));
    }
  }

  MaintainUccs(witness);
  MaintainFds(witness);
  return Status::Ok();
}

void IncrementalProfiler::MaintainUccs(const SetTrie& witness) {
  MUDS_TRACE_SPAN(&timings_, "incrementalUccs");
  const IncMetrics& metrics = IncMetrics::Get();

  // Appended rows can only break uniqueness, never restore it, so the old
  // minimal UCCs split into survivors (still minimal: a proper subset that
  // became valid would have had to be valid before) and broken seeds.
  std::vector<ColumnSet> kept;
  std::vector<ColumnSet> broken;
  kept.reserve(uccs_.size());
  for (const ColumnSet& ucc : uccs_) {
    if (!witness.ContainsSupersetOf(ucc)) {
      ++stats_.screened_out;
      metrics.screened_out->Increment();
      kept.push_back(ucc);
      continue;
    }
    // Sampling-first: a recorded pair agreeing on all of the UCC is a
    // definite break — skip the PLI re-validation entirely.
    if (evidence_ != nullptr && evidence_->RefutesUcc(ucc)) {
      ++stats_.evidence_hits;
      metrics.evidence_hits->Increment();
      broken.push_back(ucc);
      continue;
    }
    ++stats_.revalidated;
    metrics.revalidated->Increment();
    const std::shared_ptr<const Pli> pli = cache_->Get(ucc);
    if (pli->IsUnique()) {
      kept.push_back(ucc);
    } else {
      if (evidence_ != nullptr) evidence_->FeedBackUccViolation(*pli);
      broken.push_back(ucc);
    }
  }
  if (broken.empty()) {
    uccs_ = std::move(kept);  // Subsequence of a canonical list: still sorted.
    return;
  }
  stats_.broken += static_cast<int64_t>(broken.size());
  metrics.broken->Add(static_cast<int64_t>(broken.size()));

  // Localized upward re-exploration. Every new minimal UCC strictly
  // contains some broken seed, and everything strictly between seed and new
  // minimum is non-unique (else the new minimum would not be minimal), so a
  // level-wise walk from the seeds, pruned by the still-valid minima, finds
  // exactly the replacements. Constant columns never occur in a minimal
  // UCC (dropping one leaves the partition unchanged), so expansion sticks
  // to the active columns.
  SetTrie confirmed;
  for (const ColumnSet& ucc : kept) confirmed.Insert(ucc);
  const std::vector<int> active = relation_->ActiveColumns().ToIndices();

  std::map<int, std::vector<ColumnSet>> frontier;  // Keyed by set size.
  std::unordered_set<ColumnSet, ColumnSetHash> enqueued;
  const auto expand = [&](const ColumnSet& base) {
    for (int c : active) {
      if (base.Contains(c)) continue;
      ColumnSet candidate = base.With(c);
      if (enqueued.insert(candidate).second) {
        frontier[candidate.Count()].push_back(candidate);
      }
    }
  };
  for (const ColumnSet& seed : broken) expand(seed);

  std::vector<ColumnSet> discovered;
  while (!frontier.empty()) {
    auto level_it = frontier.begin();
    std::vector<ColumnSet> level = std::move(level_it->second);
    frontier.erase(level_it);
    std::sort(level.begin(), level.end());
    for (const ColumnSet& candidate : level) {
      if (confirmed.ContainsSubsetOf(candidate)) continue;
      if (evidence_ != nullptr && evidence_->RefutesUcc(candidate)) {
        ++stats_.evidence_hits;
        metrics.evidence_hits->Increment();
        expand(candidate);
        continue;
      }
      ++stats_.explored_nodes;
      metrics.explored_nodes->Increment();
      const std::shared_ptr<const Pli> pli = cache_->Get(candidate);
      if (pli->IsUnique()) {
        confirmed.Insert(candidate);
        discovered.push_back(candidate);
        ++stats_.rediscovered;
        metrics.rediscovered->Increment();
      } else {
        if (evidence_ != nullptr) evidence_->FeedBackUccViolation(*pli);
        expand(candidate);
      }
    }
  }

  kept.insert(kept.end(), discovered.begin(), discovered.end());
  Canonicalize(&kept);
  uccs_ = std::move(kept);
}

void IncrementalProfiler::MaintainFds(const SetTrie& witness) {
  MUDS_TRACE_SPAN(&timings_, "incrementalFds");
  const IncMetrics& metrics = IncMetrics::Get();
  const int num_columns = relation_->NumColumns();

  // Right-hand sides are independent: X → A breaks or survives regardless
  // of any other RHS, so each one repairs in parallel. A RHS whose minimal
  // FD set is empty stays empty — validity only shrinks under appends.
  std::vector<std::vector<ColumnSet>> lhs_by_rhs(
      static_cast<size_t>(num_columns));
  for (const Fd& fd : fds_) {
    lhs_by_rhs[static_cast<size_t>(fd.rhs)].push_back(fd.lhs);
  }
  std::vector<int> rhs_list;
  for (int c = 0; c < num_columns; ++c) {
    if (!lhs_by_rhs[static_cast<size_t>(c)].empty()) rhs_list.push_back(c);
  }

  const std::vector<int> active = relation_->ActiveColumns().ToIndices();
  std::vector<std::vector<ColumnSet>> result_by_rhs(
      static_cast<size_t>(num_columns));
  std::atomic<int64_t> revalidated{0};
  std::atomic<int64_t> screened_out{0};
  std::atomic<int64_t> broken_total{0};
  std::atomic<int64_t> rediscovered{0};
  std::atomic<int64_t> explored{0};
  std::atomic<int64_t> evidence_hits{0};

  const auto process_rhs = [&](int64_t index) {
    const int rhs = rhs_list[static_cast<size_t>(index)];
    const Column& rhs_column = relation_->GetColumn(rhs);

    // Screen and revalidate — same monotonicity as UCCs: a violating pair
    // must involve an appended row agreeing with another row on the whole
    // LHS (they may differ freely on the RHS, so only the LHS is screened).
    std::vector<ColumnSet> kept;
    std::vector<ColumnSet> broken;
    for (const ColumnSet& lhs : lhs_by_rhs[static_cast<size_t>(rhs)]) {
      if (!witness.ContainsSupersetOf(lhs)) {
        ++screened_out;
        kept.push_back(lhs);
        continue;
      }
      // Sampling-first (thread-safe: probes take a shared lock): a
      // recorded pair agreeing on the LHS but not the RHS is a definite
      // break — skip the PLI re-validation.
      if (evidence_ != nullptr && evidence_->RefutesFd(lhs, rhs)) {
        ++evidence_hits;
        broken.push_back(lhs);
        continue;
      }
      ++revalidated;
      const std::shared_ptr<const Pli> pli = cache_->Get(lhs);
      if (pli->Refines(rhs_column)) {
        kept.push_back(lhs);
      } else {
        if (evidence_ != nullptr) {
          evidence_->FeedBackFdViolation(*pli, rhs_column);
        }
        broken.push_back(lhs);
      }
    }

    if (!broken.empty()) {
      broken_total += static_cast<int64_t>(broken.size());
      SetTrie confirmed;
      for (const ColumnSet& lhs : kept) confirmed.Insert(lhs);

      std::map<int, std::vector<ColumnSet>> frontier;
      std::unordered_set<ColumnSet, ColumnSetHash> enqueued;
      const auto expand = [&](const ColumnSet& base) {
        for (int c : active) {
          if (c == rhs || base.Contains(c)) continue;
          ColumnSet candidate = base.With(c);
          if (enqueued.insert(candidate).second) {
            frontier[candidate.Count()].push_back(candidate);
          }
        }
      };
      for (const ColumnSet& seed : broken) expand(seed);

      while (!frontier.empty()) {
        auto level_it = frontier.begin();
        std::vector<ColumnSet> level = std::move(level_it->second);
        frontier.erase(level_it);
        std::sort(level.begin(), level.end());
        for (const ColumnSet& candidate : level) {
          if (confirmed.ContainsSubsetOf(candidate)) continue;
          if (evidence_ != nullptr &&
              evidence_->RefutesFd(candidate, rhs)) {
            ++evidence_hits;
            expand(candidate);
            continue;
          }
          ++explored;
          const std::shared_ptr<const Pli> pli = cache_->Get(candidate);
          if (pli->Refines(rhs_column)) {
            confirmed.Insert(candidate);
            kept.push_back(candidate);
            ++rediscovered;
          } else {
            if (evidence_ != nullptr) {
              evidence_->FeedBackFdViolation(*pli, rhs_column);
            }
            expand(candidate);
          }
        }
      }
    }

    Canonicalize(&kept);
    result_by_rhs[static_cast<size_t>(rhs)] = std::move(kept);
  };

  if (pool_ && pool_->NumThreads() > 1) {
    pool_->ParallelFor(0, static_cast<int64_t>(rhs_list.size()), process_rhs);
  } else {
    for (int64_t i = 0; i < static_cast<int64_t>(rhs_list.size()); ++i) {
      process_rhs(i);
    }
  }

  stats_.revalidated += revalidated.load();
  stats_.screened_out += screened_out.load();
  stats_.broken += broken_total.load();
  stats_.rediscovered += rediscovered.load();
  stats_.explored_nodes += explored.load();
  stats_.evidence_hits += evidence_hits.load();
  metrics.revalidated->Add(revalidated.load());
  metrics.screened_out->Add(screened_out.load());
  metrics.broken->Add(broken_total.load());
  metrics.rediscovered->Add(rediscovered.load());
  metrics.explored_nodes->Add(explored.load());
  metrics.evidence_hits->Add(evidence_hits.load());

  std::vector<Fd> fds;
  for (int rhs = 0; rhs < num_columns; ++rhs) {
    for (const ColumnSet& lhs : result_by_rhs[static_cast<size_t>(rhs)]) {
      fds.push_back(Fd{lhs, rhs});
    }
  }
  Canonicalize(&fds);
  fds_ = std::move(fds);
}

ProfilingResult IncrementalProfiler::Result() const {
  ProfilingResult result;
  result.inds = inds_;
  result.uccs = uccs_;
  result.fds = fds_;
  result.timings = timings_;
  result.duplicates_removed = duplicates_removed_;
  result.algorithm_used = algorithm_used_;
  result.column_names = relation_->ColumnNames();

  result.counters = base_counters_;
  result.counters.emplace_back("incremental_batches", stats_.batches);
  result.counters.emplace_back("incremental_appended_rows",
                               stats_.appended_rows);
  result.counters.emplace_back("incremental_duplicates_dropped",
                               stats_.duplicates_dropped);
  result.counters.emplace_back("incremental_revalidated", stats_.revalidated);
  result.counters.emplace_back("incremental_screened_out",
                               stats_.screened_out);
  result.counters.emplace_back("incremental_broken", stats_.broken);
  result.counters.emplace_back("incremental_rediscovered",
                               stats_.rediscovered);
  result.counters.emplace_back("incremental_explored_nodes",
                               stats_.explored_nodes);
  result.counters.emplace_back("incremental_evidence_hits",
                               stats_.evidence_hits);
  if (cache_) {
    const PliCache::Stats cache_stats = cache_->GetStats();
    result.counters.emplace_back("incremental_pli_cache_hits",
                                 cache_stats.hits);
    result.counters.emplace_back("incremental_pli_cache_misses",
                                 cache_stats.misses);
    result.counters.emplace_back("incremental_pli_cache_evictions",
                                 cache_stats.evictions);
    result.counters.emplace_back("incremental_pli_cache_spill_writes",
                                 cache_stats.spill_writes);
    result.counters.emplace_back("incremental_pli_cache_spill_reloads",
                                 cache_stats.spill_reloads);
  }

  result.metrics =
      MetricsRegistry::Delta(before_, MetricsRegistry::Global().Snapshot());
  return result;
}

}  // namespace muds
