#include "core/profiler.h"

#include <utility>

#include "common/check.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/holistic_fun.h"
#include "core/incremental.h"
#include "data/preprocess.h"
#include "pli/pli_cache.h"
#include "ucc/ducc.h"

namespace muds {

namespace {

void MergeTimings(const PhaseTimings& from, PhaseTimings* into) {
  for (const auto& [name, micros] : from.entries()) into->Add(name, micros);
}

// §6.5 / §8: decide between MUDS and Holistic FUN for Algorithm::kAuto.
// The UCC-shape policy pays one DUCC run for the decision; §6.4 shows that
// cost is negligible next to FD discovery.
Algorithm ChooseAutomatically(const Relation& relation,
                              const ProfileOptions& options,
                              PhaseTimings* timings) {
  const ColumnSet active = relation.ActiveColumns();
  if (options.auto_policy == AutoPolicy::kColumnCount) {
    return active.Count() >= options.auto_column_threshold
               ? Algorithm::kMuds
               : Algorithm::kHolisticFun;
  }
  std::vector<ColumnSet> uccs;
  {
    MUDS_TRACE_SPAN(timings, "autoSelect");
    ThreadPool pool(options.num_threads);
    PliCache cache(relation, options.pli_budget_bytes, &pool,
                   options.pli_impl);
    Ducc::Options ducc_options;
    ducc_options.seed = options.seed;
    uccs = Ducc::Discover(relation, &cache, ducc_options);
  }

  int64_t total_size = 0;
  ColumnSet z;
  for (const ColumnSet& ucc : uccs) {
    total_size += ucc.Count();
    z = z.Union(ucc);
  }
  if (uccs.empty()) return Algorithm::kHolisticFun;
  const double mean_size =
      static_cast<double>(total_size) / static_cast<double>(uccs.size());
  // "Many, large UCCs": composite keys on average, covering most columns.
  const bool many_large =
      mean_size >= 2.0 && 2 * z.Count() >= active.Count();
  return many_large ? Algorithm::kMuds : Algorithm::kHolisticFun;
}

ProfilingResult RunOnDeduped(const Relation& relation,
                             const ProfileOptions& options) {
  if (options.algorithm == Algorithm::kAuto) {
    PhaseTimings selection_timings;
    ProfileOptions chosen = options;
    chosen.algorithm =
        ChooseAutomatically(relation, options, &selection_timings);
    ProfilingResult result = RunOnDeduped(relation, chosen);
    MergeTimings(selection_timings, &result.timings);
    return result;
  }

  ProfilingResult result;
  result.column_names = relation.ColumnNames();
  result.algorithm_used = options.algorithm;
  switch (options.algorithm) {
    case Algorithm::kMuds: {
      MudsOptions muds_options = options.muds;
      muds_options.seed = options.seed;
      muds_options.num_threads = options.num_threads;
      muds_options.pli_budget_bytes = options.pli_budget_bytes;
      muds_options.pli_impl = options.pli_impl;
      muds_options.spill = options.spill;
      muds_options.sampling = options.sampling;
      MudsResult muds = Muds::Run(relation, muds_options);
      result.inds = std::move(muds.inds);
      result.uccs = std::move(muds.uccs);
      result.fds = std::move(muds.fds);
      MergeTimings(muds.timings, &result.timings);
      result.counters = {
          {"fd_checks", muds.stats.fd_checks_minimize +
                            muds.stats.fd_checks_rz +
                            muds.stats.fd_checks_shadowed},
          {"fd_checks_minimize", muds.stats.fd_checks_minimize},
          {"fd_checks_rz", muds.stats.fd_checks_rz},
          {"fd_checks_shadowed", muds.stats.fd_checks_shadowed},
          {"pli_intersects", muds.stats.pli_intersects},
          {"pli_cache_hits", muds.stats.pli_cache_hits},
          {"pli_cache_misses", muds.stats.pli_cache_misses},
          {"pli_cache_evictions", muds.stats.pli_cache_evictions},
          {"pli_cache_bytes", muds.stats.pli_cache_bytes},
          {"pli_cache_pinned_bytes", muds.stats.pli_cache_pinned_bytes},
          {"pli_cache_spill_writes", muds.stats.pli_cache_spill_writes},
          {"pli_cache_spill_reloads", muds.stats.pli_cache_spill_reloads},
          {"pli_cache_spill_bytes", muds.stats.pli_cache_spill_bytes},
          {"connector_lookups", muds.stats.connector_lookups},
          {"shadowed_tasks", muds.stats.shadowed_tasks},
          {"shadowed_rounds", muds.stats.shadowed_rounds},
          {"ducc_uniqueness_checks", muds.stats.ducc.uniqueness_checks},
          {"num_threads", muds.stats.num_threads_used},
          {"parallel_tasks", muds.stats.parallel_tasks},
          {"sampling_pairs", muds.stats.sampling_pairs},
          {"sampling_refuted", muds.stats.sampling_refuted},
          {"sampling_fed_back", muds.stats.sampling_fed_back},
          {"sampling_probe_ns", muds.stats.sampling_probe_ns},
      };
      break;
    }
    case Algorithm::kHolisticFun:
    case Algorithm::kBaseline: {
      HolisticResult holistic =
          options.algorithm == Algorithm::kHolisticFun
              ? HolisticFun::Run(relation, options.num_threads,
                                 options.pli_impl, options.spill,
                                 options.sampling)
              : Baseline::Run(relation, options.seed, options.num_threads,
                              options.pli_budget_bytes, options.pli_impl,
                              options.spill, options.sampling);
      result.inds = std::move(holistic.inds);
      result.uccs = std::move(holistic.uccs);
      result.fds = std::move(holistic.fds);
      MergeTimings(holistic.timings, &result.timings);
      result.counters = {
          {"fd_checks", holistic.fd_checks},
          {"pli_intersects", holistic.pli_intersects},
          {"pli_cache_hits", holistic.pli_cache_hits},
          {"pli_cache_misses", holistic.pli_cache_misses},
          {"pli_cache_evictions", holistic.pli_cache_evictions},
          {"pli_cache_spill_writes", holistic.pli_cache_spill_writes},
          {"pli_cache_spill_reloads", holistic.pli_cache_spill_reloads},
          {"num_threads", holistic.num_threads_used},
          {"sampling_pairs", holistic.sampling_pairs},
          {"sampling_refuted", holistic.sampling_refuted},
          {"sampling_fed_back", holistic.sampling_fed_back},
          {"sampling_probe_ns", holistic.sampling_probe_ns},
      };
      break;
    }
    case Algorithm::kAuto:
      MUDS_CHECK_MSG(false, "kAuto is resolved before dispatch");
      break;
  }
  return result;
}

}  // namespace

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kMuds:
      return "MUDS";
    case Algorithm::kHolisticFun:
      return "HFUN";
    case Algorithm::kBaseline:
      return "baseline";
    case Algorithm::kAuto:
      return "auto";
  }
  return "unknown";
}

ProfilingResult ProfileRelation(const Relation& relation,
                                const ProfileOptions& options) {
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();

  PhaseTimings dedup_timings;
  DeduplicateResult deduped = [&] {
    MUDS_TRACE_SPAN(&dedup_timings, "dedup");
    return DeduplicateRows(relation);
  }();

  ProfilingResult result = RunOnDeduped(deduped.relation, options);
  MergeTimings(dedup_timings, &result.timings);
  result.duplicates_removed = deduped.duplicates_removed;
  result.metrics = MetricsRegistry::Delta(
      before, MetricsRegistry::Global().Snapshot());
  return result;
}

namespace {

// The session thread count drives the ingest engine too, unless the caller
// pinned `csv.num_threads` to something other than its default.
CsvOptions CsvOptionsForLoad(const ProfileOptions& options) {
  CsvOptions csv = options.csv;
  if (csv.num_threads == 1) csv.num_threads = options.num_threads;
  return csv;
}

}  // namespace

Result<ProfilingResult> ProfileCsvString(std::string_view text,
                                         const ProfileOptions& options) {
  // The baseline runs three independent tools, each reading the input
  // itself; the holistic algorithms read once (§3: shared I/O).
  const int num_reads = options.algorithm == Algorithm::kBaseline ? 3 : 1;
  // ProfileRelation snapshots the metrics registry around the discovery
  // phases only; widen the delta here so ingest.* counters are included.
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  const CsvOptions csv = CsvOptionsForLoad(options);
  int64_t load_micros = 0;
  std::optional<Relation> relation;
  for (int i = 0; i < num_reads; ++i) {
    MUDS_TRACE_SPAN("load");
    Timer load_timer;
    Result<Relation> parsed = CsvReader::ReadString(text, csv);
    if (!parsed.ok()) return parsed.status();
    load_micros += load_timer.ElapsedMicros();
    relation.emplace(std::move(parsed).value());
  }

  ProfilingResult result = ProfileRelation(*relation, options);
  result.timings.Add("load", load_micros);
  result.metrics = MetricsRegistry::Delta(
      before, MetricsRegistry::Global().Snapshot());
  return result;
}

Result<ProfilingResult> ProfileCsvFile(const std::string& path,
                                       const ProfileOptions& options) {
  const int num_reads = options.algorithm == Algorithm::kBaseline ? 3 : 1;
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  const CsvOptions csv = CsvOptionsForLoad(options);
  int64_t load_micros = 0;
  std::optional<Relation> relation;
  for (int i = 0; i < num_reads; ++i) {
    MUDS_TRACE_SPAN("load");
    Timer load_timer;
    Result<Relation> parsed = CsvReader::ReadFile(path, csv);
    if (!parsed.ok()) return parsed.status();
    load_micros += load_timer.ElapsedMicros();
    relation.emplace(std::move(parsed).value());
  }

  ProfilingResult result = ProfileRelation(*relation, options);
  result.timings.Add("load", load_micros);
  result.metrics = MetricsRegistry::Delta(
      before, MetricsRegistry::Global().Snapshot());
  return result;
}

Result<ProfilingResult> ProfileCsvStringWithAppends(
    std::string_view base, const std::vector<std::string>& appends,
    const ProfileOptions& options) {
  if (appends.empty()) return ProfileCsvString(base, options);
  if (options.csv.nulls == NullSemantics::kNullUnequal) {
    // kNullUnequal rewrites each NULL into a per-file unique sentinel, so
    // parsing batches separately cannot reproduce a from-scratch parse of
    // the concatenated input — the incremental == from-scratch guarantee
    // would not hold. Refuse instead of silently diverging.
    return Status::InvalidArgument(
        "append batches cannot be combined with NULL != NULL semantics");
  }
  const CsvOptions csv = CsvOptionsForLoad(options);
  Result<Relation> parsed = CsvReader::ReadString(base, csv);
  if (!parsed.ok()) return parsed.status();
  IncrementalProfiler profiler(parsed.value(), options);
  // Append blobs are headerless row batches in the base's dialect: the
  // result is the from-scratch profile of the byte concatenation
  // base + appends[0] + ... (what the serving catalog keys on).
  CsvOptions batch_csv = csv;
  batch_csv.has_header = false;
  for (size_t i = 0; i < appends.size(); ++i) {
    Result<Relation> batch = CsvReader::ReadString(
        appends[i], batch_csv, "append" + std::to_string(i + 1));
    if (!batch.ok()) return batch.status();
    if (batch.value().NumColumns() != parsed.value().NumColumns()) {
      return Status::InvalidArgument(
          "append batch " + std::to_string(i + 1) + " has " +
          std::to_string(batch.value().NumColumns()) + " columns, base has " +
          std::to_string(parsed.value().NumColumns()));
    }
    // The headerless parse synthesized positional column names; restore
    // the base schema so the incremental schema check sees one relation.
    std::vector<Column> columns;
    columns.reserve(static_cast<size_t>(batch.value().NumColumns()));
    for (int c = 0; c < batch.value().NumColumns(); ++c) {
      columns.push_back(batch.value().GetColumn(c));
    }
    Relation renamed(batch.value().name(), parsed.value().ColumnNames(),
                     std::move(columns), batch.value().NumRows());
    const Status appended = profiler.Append(renamed);
    if (!appended.ok()) return appended;
  }
  return profiler.Result();
}

}  // namespace muds
