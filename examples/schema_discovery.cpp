// Schema discovery / database reverse engineering (§1 names both as core
// applications): profile an unknown denormalized table, report its keys,
// and use the minimal FDs to propose a normalization into smaller tables.
//
//   ./build/examples/schema_discovery

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "data/relation.h"

namespace {

// A classic denormalized orders table: city determines state; customer
// determines city; order determines everything.
muds::Relation MakeOrdersTable() {
  std::vector<std::vector<std::string>> rows;
  const char* customers[] = {"ada", "bob", "cid", "dot", "eva", "fin"};
  const char* cities[] = {"berlin", "potsdam", "hamburg"};
  const char* states[] = {"BE", "BB", "HH"};
  const char* items[] = {"disk", "cpu", "ram", "board"};
  for (int order = 0; order < 120; ++order) {
    const int customer = order % 6;
    const int city = customer % 3;
    const int item = (order * 7) % 4;
    rows.push_back({
        "o" + std::to_string(order),              // order_id
        customers[customer],                      // customer
        cities[city],                             // city
        states[city],                             // state
        items[item],                              // item
        std::to_string(10 + item * 5),            // unit_price (item-driven)
        std::to_string(1 + (order * 13) % 9),     // quantity
    });
  }
  return muds::Relation::FromRows({"order_id", "customer", "city", "state",
                                   "item", "unit_price", "quantity"},
                                  rows, "orders");
}

}  // namespace

int main() {
  muds::Relation orders = MakeOrdersTable();
  muds::ProfileOptions options;
  muds::ProfilingResult profile = muds::ProfileRelation(orders, options);
  const auto& names = profile.column_names;

  std::printf("profiled %s: %d rows, %d columns\n", orders.name().c_str(),
              orders.NumRows(), orders.NumColumns());

  std::printf("\nkey candidates (minimal UCCs):\n");
  for (const muds::ColumnSet& ucc : profile.uccs) {
    std::printf("  %s\n", ucc.ToString(names).c_str());
  }

  std::printf("\nminimal functional dependencies:\n");
  for (const muds::Fd& fd : profile.fds) {
    std::printf("  %s\n", muds::ToString(fd, names).c_str());
  }

  // Group FDs by determinant and propose a decomposition: every non-key
  // determinant with its dependents becomes its own table (the textbook
  // 3NF synthesis step driven by discovered — not declared — FDs).
  std::map<muds::ColumnSet, muds::ColumnSet> closures;
  for (const muds::Fd& fd : profile.fds) {
    closures[fd.lhs].Add(fd.rhs);
  }
  std::printf("\nsuggested decomposition:\n");
  for (const auto& [lhs, rhs] : closures) {
    if (lhs.Empty()) continue;
    bool lhs_is_key = false;
    for (const muds::ColumnSet& ucc : profile.uccs) {
      if (ucc == lhs) lhs_is_key = true;
    }
    std::printf("  table(%s%s -> %s)\n", lhs.ToString(names).c_str(),
                lhs_is_key ? " [key]" : "", rhs.ToString(names).c_str());
  }
  std::printf(
      "\n(each non-key determinant names a normalization opportunity)\n");
  return 0;
}
