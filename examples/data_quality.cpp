// Data-quality screening — the data-cleansing application from the
// paper's abstract: exact dependencies define the rules, soft dependencies
// expose the near-rules whose few violating rows are likely data errors.
//
//   ./build/examples/data_quality

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "data/statistics.h"
#include "fd/soft_fd.h"

namespace {

// A city/zip table with a handful of injected inconsistencies.
muds::Relation MakeDirtyTable() {
  std::vector<std::vector<std::string>> rows;
  const char* cities[] = {"berlin", "potsdam", "hamburg", "bremen"};
  const char* zips[] = {"10115", "14467", "20095", "28195"};
  for (int i = 0; i < 400; ++i) {
    const int c = i % 4;
    std::string zip = zips[c];
    std::string city = cities[c];
    if (i == 77 || i == 311) zip = zips[(c + 1) % 4];   // Wrong zip.
    if (i == 123) city = "Berlin";                      // Case typo.
    rows.push_back({"p" + std::to_string(i), city, zip,
                    std::to_string(20 + (i * 13) % 60)});
  }
  return muds::Relation::FromRows({"person_id", "city", "zip", "age"}, rows,
                                  "addresses");
}

}  // namespace

int main() {
  muds::Relation table = MakeDirtyTable();

  // 1. Column statistics give the first screening pass.
  std::printf("column statistics:\n%s\n",
              muds::FormatStatistics(muds::ComputeStatistics(table)).c_str());

  // 2. Exact profiling: which rules hold on the (dirty) data as-is?
  muds::ProfileOptions options;
  muds::ProfilingResult profile = muds::ProfileRelation(table, options);
  std::printf("exact minimal FDs on the dirty data: %zu\n",
              profile.fds.size());

  // 3. Soft FDs: near-rules that exact profiling cannot see because a few
  // rows violate them — exactly the cells worth auditing.
  muds::Cords::Options cords;
  cords.min_strength = 0.97;
  cords.sample_size = table.NumRows();
  std::printf("\nnear-exact rules (strength >= %.2f but < 1):\n",
              cords.min_strength);
  for (const muds::SoftFd& fd : muds::Cords::Discover(table, cords)) {
    if (fd.strength >= 1.0) continue;
    std::printf("  %s\n", ToString(fd, table.ColumnNames()).c_str());

    // Report the violating rows: those outside the majority mapping.
    std::map<std::string, std::map<std::string, int>> groups;
    for (muds::RowId row = 0; row < table.NumRows(); ++row) {
      ++groups[table.Value(row, fd.lhs)][table.Value(row, fd.rhs)];
    }
    for (muds::RowId row = 0; row < table.NumRows(); ++row) {
      const auto& votes = groups[table.Value(row, fd.lhs)];
      std::string majority;
      int best = -1;
      for (const auto& [value, count] : votes) {
        if (count > best) {
          best = count;
          majority = value;
        }
      }
      if (table.Value(row, fd.rhs) != majority) {
        std::printf("    row %d: %s=%s but %s=%s (expected %s)\n", row,
                    table.ColumnName(fd.lhs).c_str(),
                    table.Value(row, fd.lhs).c_str(),
                    table.ColumnName(fd.rhs).c_str(),
                    table.Value(row, fd.rhs).c_str(), majority.c_str());
      }
    }
  }
  return 0;
}
