// Genome data linkage — the motivating scenario from §1 of the paper:
// datasets from different genome sequencers must be analyzed and linked,
// which requires knowledge of their structural properties.
//
// This example profiles two synthetic genome tables, uses the minimal UCCs
// to identify record identifiers, and uses value-inclusion reasoning over
// the profiled dictionaries to propose join (foreign-key) columns between
// the tables.
//
//   ./build/examples/genome_linkage

#include <cstdio>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "data/relation.h"
#include "workload/generators.h"

namespace {

using muds::ColumnSpec;
using muds::Relation;

Relation MakeGeneTable() {
  std::vector<ColumnSpec> specs = {
      {ColumnSpec::Kind::kUnique, 0, 1, {}},           // gene_id
      {ColumnSpec::Kind::kCategorical, 24, 1, {}},     // chromosome
      {ColumnSpec::Kind::kDerived, 180, 1, {0}},       // locus
      {ColumnSpec::Kind::kCategorical, 12, 1, {}},     // organism
      {ColumnSpec::Kind::kDerived, 40, 1, {3}},        // taxonomy family
  };
  Relation raw = muds::MakeFromSpecs(600, specs, 11, "genes");
  std::vector<std::vector<std::string>> rows;
  rows.reserve(static_cast<size_t>(raw.NumRows()));
  for (muds::RowId row = 0; row < raw.NumRows(); ++row) {
    rows.push_back(raw.Row(row));
  }
  return Relation::FromRows(
      {"gene_id", "chromosome", "locus", "organism", "family"}, rows,
      "genes");
}

Relation MakeExpressionTable(const Relation& genes) {
  // Expression measurements referencing a subset of the gene ids.
  std::vector<std::string> columns = {"sample_id", "gene_ref", "tissue",
                                      "expression_level"};
  std::vector<std::vector<std::string>> rows;
  const char* tissues[] = {"liver", "brain", "muscle", "skin"};
  for (int i = 0; i < 1500; ++i) {
    const muds::RowId gene_row =
        static_cast<muds::RowId>((i * 37) % (genes.NumRows() / 2));
    rows.push_back({"s" + std::to_string(i),
                    genes.Value(gene_row, 0),
                    tissues[i % 4],
                    std::to_string((i * i) % 97)});
  }
  return Relation::FromRows(columns, rows, "expression");
}

// True if every distinct value of `from` also occurs in `to` — a unary IND
// across tables, checked by merging the profiled sorted dictionaries.
bool IsIncluded(const muds::Column& from, const muds::Column& to) {
  size_t i = 0;
  size_t j = 0;
  while (i < from.dictionary.size()) {
    if (j == to.dictionary.size() || from.dictionary[i] < to.dictionary[j]) {
      return false;
    }
    if (from.dictionary[i] == to.dictionary[j]) ++i;
    ++j;
  }
  return true;
}

void ReportKeys(const Relation& relation) {
  muds::ProfileOptions options;
  muds::ProfilingResult profile = muds::ProfileRelation(relation, options);
  std::printf("table %-12s %5d rows, %d columns\n", relation.name().c_str(),
              relation.NumRows(), relation.NumColumns());
  for (const muds::ColumnSet& ucc : profile.uccs) {
    std::printf("  key candidate: %s\n",
                ucc.ToString(profile.column_names).c_str());
  }
  for (const muds::Fd& fd : profile.fds) {
    if (fd.lhs.Count() <= 1) {
      std::printf("  dependency:    %s\n",
                  muds::ToString(fd, profile.column_names).c_str());
    }
  }
}

}  // namespace

int main() {
  Relation genes = MakeGeneTable();
  Relation expression = MakeExpressionTable(genes);

  ReportKeys(genes);
  std::printf("\n");
  ReportKeys(expression);

  std::printf("\ncross-table inclusion (join candidates):\n");
  for (int a = 0; a < expression.NumColumns(); ++a) {
    for (int b = 0; b < genes.NumColumns(); ++b) {
      if (!IsIncluded(expression.GetColumn(a), genes.GetColumn(b))) continue;
      std::printf("  %s.%s <= %s.%s  -- candidate foreign key\n",
                  expression.name().c_str(),
                  expression.ColumnName(a).c_str(), genes.name().c_str(),
                  genes.ColumnName(b).c_str());
    }
  }
  return 0;
}
