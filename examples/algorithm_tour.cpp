// Algorithm tour: run every profiling strategy in the library on the same
// dataset — the paper's baseline (sequential SPIDER + DUCC + FUN), Holistic
// FUN, MUDS, and plain TANE — and show that they agree while doing very
// different amounts of work.
//
//   ./build/examples/algorithm_tour [columns] [rows]

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "core/profiler.h"
#include "data/csv.h"
#include "data/preprocess.h"
#include "fd/tane.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using namespace muds;
  const int cols = argc > 1 ? std::atoi(argv[1]) : 12;
  const int64_t rows = argc > 2 ? std::atoll(argv[2]) : 2000;

  Relation relation = MakeNcvoterLike(rows, cols, /*seed=*/7);
  const std::string csv = CsvWriter::ToString(relation);
  std::printf("dataset: ncvoter-like, %lld rows x %d columns\n\n",
              static_cast<long long>(rows), cols);

  std::printf("%-10s %10s %8s %8s %8s   %s\n", "algorithm", "time[s]",
              "INDs", "UCCs", "FDs", "notes");

  ProfilingResult reference;
  for (Algorithm algorithm : {Algorithm::kBaseline, Algorithm::kHolisticFun,
                              Algorithm::kMuds}) {
    ProfileOptions options;
    options.algorithm = algorithm;
    Result<ProfilingResult> result = ProfileCsvString(csv, options);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const ProfilingResult& r = result.value();
    std::string notes;
    for (const auto& [counter, value] : r.counters) {
      if (counter == "fd_checks" || counter == "pli_intersects") {
        notes += counter + "=" + std::to_string(value) + " ";
      }
    }
    std::printf("%-10s %10.3f %8zu %8zu %8zu   %s\n",
                AlgorithmName(algorithm), r.TotalSeconds(), r.inds.size(),
                r.uccs.size(), r.fds.size(), notes.c_str());
    if (algorithm == Algorithm::kBaseline) {
      reference = r;
    } else if (r.fds != reference.fds || r.uccs != reference.uccs ||
               r.inds != reference.inds) {
      std::printf("  ^^ DISAGREES with the baseline!\n");
    }
  }

  // TANE for comparison: FD discovery only.
  Timer timer;
  Relation parsed = CsvReader::ReadString(csv).value();
  Relation deduped = DeduplicateRows(parsed).relation;
  FdDiscoveryResult tane = Tane::Discover(deduped);
  std::printf("%-10s %10.3f %8s %8zu %8zu   fd_checks=%lld (FDs only)\n",
              "TANE", timer.ElapsedSeconds(), "-", tane.uccs.size(),
              tane.fds.size(), static_cast<long long>(tane.fd_checks));
  if (tane.fds != reference.fds) {
    std::printf("  ^^ DISAGREES with the baseline!\n");
  }

  std::printf("\nall strategies computed the same metadata; the holistic\n"
              "ones shared the read, the PLIs, and the pruning knowledge.\n");
  return 0;
}
