// Quickstart: profile a small CSV document and print every discovered
// dependency.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [file.csv]
//
// Without an argument, a small in-memory example relation is profiled.

#include <cstdio>
#include <string>

#include "core/profiler.h"

namespace {

constexpr char kExampleCsv[] =
    "employee_id,name,department,dept_floor,city,zip\n"
    "1,alice,engineering,3,berlin,10115\n"
    "2,bob,engineering,3,berlin,10115\n"
    "3,carol,sales,1,potsdam,14467\n"
    "4,dave,sales,1,berlin,10117\n"
    "5,erin,marketing,2,potsdam,14467\n"
    "6,frank,marketing,2,berlin,10115\n";

}  // namespace

int main(int argc, char** argv) {
  muds::ProfileOptions options;
  options.algorithm = muds::Algorithm::kMuds;

  muds::Result<muds::ProfilingResult> result =
      argc > 1 ? muds::ProfileCsvFile(argv[1], options)
               : muds::ProfileCsvString(kExampleCsv, options);
  if (!result.ok()) {
    std::fprintf(stderr, "profiling failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const muds::ProfilingResult& profile = result.value();
  const auto& names = profile.column_names;

  std::printf("== unary inclusion dependencies (%zu)\n",
              profile.inds.size());
  for (const muds::Ind& ind : profile.inds) {
    std::printf("  %s\n", muds::ToString(ind, names).c_str());
  }

  std::printf("== minimal unique column combinations (%zu)\n",
              profile.uccs.size());
  for (const muds::ColumnSet& ucc : profile.uccs) {
    std::printf("  %s\n", ucc.ToString(names).c_str());
  }

  std::printf("== minimal functional dependencies (%zu)\n",
              profile.fds.size());
  for (const muds::Fd& fd : profile.fds) {
    std::printf("  %s\n", muds::ToString(fd, names).c_str());
  }

  std::printf("== phases\n");
  for (const auto& [phase, micros] : profile.timings.entries()) {
    std::printf("  %-24s %8.3f ms\n", phase.c_str(),
                static_cast<double>(micros) / 1e3);
  }
  return 0;
}
